//! The on-disk artifact store: fingerprint-keyed, versioned, checksummed.
//!
//! ## File format
//!
//! Every artifact file is a fixed 44-byte header followed by the payload:
//!
//! ```text
//! offset  size  field
//! 0       8     magic "SPECARTF"
//! 8       4     format version (u32 LE)
//! 12      8     structural fingerprint (u64 LE) — also the file name
//! 20      8     options/schema signature (u64 LE)
//! 28      8     payload length in bytes (u64 LE)
//! 36      8     FNV-1a checksum of the payload (u64 LE)
//! 44      …     payload
//! ```
//!
//! Files are named `<fingerprint-hex>.artifact` inside the store directory.
//! Writes go to a unique temp file first and are renamed into place, so
//! readers (including other processes sharing the directory) only ever see
//! complete files.  A file that fails any validation step is *quarantined*
//! by renaming it to `<name>.rejected` — it stops being served immediately,
//! but stays on disk for postmortems until GC removes it.
//!
//! ## GC
//!
//! [`ArtifactStore::gc`] enforces an optional byte budget by recency, the
//! same policy shape the in-memory session cache uses: entries are sorted by
//! (mtime, size, name) and the oldest are removed until the store fits.
//! Loads refresh the file mtime so recently used artifacts survive.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::SystemTime;

/// Magic bytes identifying an artifact file.
pub const ARTIFACT_MAGIC: &[u8; 8] = b"SPECARTF";

/// Current artifact format version.
///
/// Bump this whenever the encoding of any serialized type changes shape;
/// stores written by older versions then read as [`RejectReason::Version`]
/// and fall back to a cold prepare instead of decoding garbage.
pub const ARTIFACT_FORMAT_VERSION: u32 = 1;

/// Header length in bytes.
const HEADER_LEN: usize = 44;

/// File extension of valid artifacts.
const ARTIFACT_EXT: &str = "artifact";

/// Suffix appended to quarantined files.
const REJECTED_SUFFIX: &str = ".rejected";

/// FNV-1a 64-bit hash, the same function the structural fingerprint uses.
pub fn fnv64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Why a stored artifact was rejected instead of loaded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The file is shorter than the header or than the declared payload.
    Truncated,
    /// The magic bytes do not match.
    Magic,
    /// The format version is not the current one.
    Version(u32),
    /// The header fingerprint disagrees with the requested fingerprint.
    Fingerprint,
    /// The options/schema signature disagrees with the requested one.
    Signature,
    /// The payload checksum does not match the header.
    Checksum,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::Truncated => write!(f, "truncated file"),
            RejectReason::Magic => write!(f, "bad magic"),
            RejectReason::Version(found) => write!(
                f,
                "format version {found} (expected {ARTIFACT_FORMAT_VERSION})"
            ),
            RejectReason::Fingerprint => write!(f, "fingerprint mismatch"),
            RejectReason::Signature => write!(f, "options signature mismatch"),
            RejectReason::Checksum => write!(f, "checksum mismatch"),
        }
    }
}

/// Parsed artifact file header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArtifactHeader {
    /// Format version the file was written with.
    pub version: u32,
    /// Structural fingerprint the artifact is keyed by.
    pub fingerprint: u64,
    /// Options/schema signature of the writing build.
    pub signature: u64,
    /// Payload length in bytes.
    pub payload_len: u64,
    /// FNV-1a checksum of the payload.
    pub checksum: u64,
}

/// Result of a store lookup.
#[derive(Debug)]
pub enum LoadOutcome {
    /// The artifact was found and validated; here is its payload.
    Loaded(Vec<u8>),
    /// No file exists for the fingerprint.
    Missing,
    /// A file existed but failed validation and was quarantined.
    Rejected(RejectReason),
}

/// A store entry as listed on disk.
#[derive(Clone, Debug)]
pub struct StoreEntry {
    /// Fingerprint parsed from the file name.
    pub fingerprint: u64,
    /// Total file size (header + payload) in bytes.
    pub file_bytes: u64,
    /// Path of the artifact file.
    pub path: PathBuf,
}

/// One row of [`ArtifactStore::verify`]: the listed entry paired with its
/// validated payload, or the reason the file would be rejected.
pub type VerifiedEntry = (StoreEntry, Result<Vec<u8>, RejectReason>);

/// Result of a GC pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Artifact files removed to satisfy the byte budget.
    pub evicted: u64,
    /// Quarantined/temp leftovers removed.
    pub junk_removed: u64,
    /// Bytes of artifact files remaining after the pass.
    pub remaining_bytes: u64,
}

/// Content-addressed on-disk artifact store.
#[derive(Clone, Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
    max_bytes: Option<u64>,
}

/// Process-wide sequence for unique temp-file names (same idiom as the
/// rendered-report store).
static STORE_SEQ: AtomicU64 = AtomicU64::new(0);

impl ArtifactStore {
    /// Opens (without touching the filesystem yet) a store rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            max_bytes: None,
        }
    }

    /// Sets the byte budget enforced by [`ArtifactStore::gc`] (and after
    /// every save).  `None` means unbounded.
    pub fn with_max_bytes(mut self, max_bytes: Option<u64>) -> Self {
        self.max_bytes = max_bytes;
        self
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured byte budget, if any.
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }

    /// Path of the artifact file for `fingerprint`.
    pub fn path_for(&self, fingerprint: u64) -> PathBuf {
        self.dir.join(format!("{fingerprint:016x}.{ARTIFACT_EXT}"))
    }

    /// Atomically writes an artifact, then enforces the byte budget.
    ///
    /// Returns the total number of bytes written (header + payload).
    pub fn save(&self, fingerprint: u64, signature: u64, payload: &[u8]) -> io::Result<u64> {
        let written = self.save_without_gc(fingerprint, signature, payload)?;
        let _ = self.gc();
        Ok(written)
    }

    /// The write half of [`ArtifactStore::save`], without the budget pass —
    /// for callers that account the write and the GC separately (the
    /// telemetry layer times them as distinct operations).  Callers that
    /// skip [`ArtifactStore::gc`] afterwards may leave the store over
    /// budget until the next save.
    pub fn save_without_gc(
        &self,
        fingerprint: u64,
        signature: u64,
        payload: &[u8],
    ) -> io::Result<u64> {
        fs::create_dir_all(&self.dir)?;
        let mut file = Vec::with_capacity(HEADER_LEN + payload.len());
        file.extend_from_slice(ARTIFACT_MAGIC);
        file.extend_from_slice(&ARTIFACT_FORMAT_VERSION.to_le_bytes());
        file.extend_from_slice(&fingerprint.to_le_bytes());
        file.extend_from_slice(&signature.to_le_bytes());
        file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        file.extend_from_slice(&fnv64(payload).to_le_bytes());
        file.extend_from_slice(payload);

        let seq = STORE_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = self.dir.join(format!(
            "{fingerprint:016x}.tmp.{}.{seq}",
            std::process::id()
        ));
        fs::write(&tmp, &file)?;
        let final_path = self.path_for(fingerprint);
        if let Err(err) = fs::rename(&tmp, &final_path) {
            let _ = fs::remove_file(&tmp);
            return Err(err);
        }
        Ok(file.len() as u64)
    }

    /// Looks up the artifact for `(fingerprint, signature)`.
    ///
    /// A validated hit refreshes the file's mtime (recency for GC).  A file
    /// that fails validation is quarantined and reported as
    /// [`LoadOutcome::Rejected`]; the caller should fall back to a cold
    /// prepare.
    pub fn load(&self, fingerprint: u64, signature: u64) -> LoadOutcome {
        let path = self.path_for(fingerprint);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(err) if err.kind() == io::ErrorKind::NotFound => return LoadOutcome::Missing,
            Err(_) => return LoadOutcome::Missing,
        };
        match parse_artifact(&bytes, Some(fingerprint), Some(signature)) {
            Ok((_, payload)) => {
                if let Ok(file) = fs::File::open(&path) {
                    let _ = file.set_times(fs::FileTimes::new().set_modified(SystemTime::now()));
                }
                LoadOutcome::Loaded(payload.to_vec())
            }
            Err(reason) => {
                self.quarantine(&path);
                LoadOutcome::Rejected(reason)
            }
        }
    }

    /// Quarantines the artifact for `fingerprint` (e.g. after a payload that
    /// passed the checksum still failed to decode).
    pub fn reject(&self, fingerprint: u64) {
        self.quarantine(&self.path_for(fingerprint));
    }

    fn quarantine(&self, path: &Path) {
        let mut name = path.as_os_str().to_os_string();
        name.push(REJECTED_SUFFIX);
        if fs::rename(path, &name).is_err() {
            // Renaming failed (e.g. read-only dir entry race); fall back to
            // removal so the bad file can never be served again.
            let _ = fs::remove_file(path);
        }
    }

    /// Lists artifact files, sorted by fingerprint.
    pub fn entries(&self) -> io::Result<Vec<StoreEntry>> {
        let mut out = Vec::new();
        let dir = match fs::read_dir(&self.dir) {
            Ok(dir) => dir,
            Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(err) => return Err(err),
        };
        for entry in dir {
            let entry = entry?;
            let path = entry.path();
            let Some(fingerprint) = artifact_fingerprint_of(&path) else {
                continue;
            };
            let meta = entry.metadata()?;
            out.push(StoreEntry {
                fingerprint,
                file_bytes: meta.len(),
                path,
            });
        }
        out.sort_by_key(|e| e.fingerprint);
        Ok(out)
    }

    /// Validates every artifact file without quarantining anything.
    ///
    /// Returns each entry paired with its validated payload or the reason it
    /// would be rejected.
    pub fn verify(&self) -> io::Result<Vec<VerifiedEntry>> {
        let mut out = Vec::new();
        for entry in self.entries()? {
            let result = match fs::read(&entry.path) {
                Ok(bytes) => parse_artifact(&bytes, Some(entry.fingerprint), None)
                    .map(|(_, payload)| payload.to_vec()),
                Err(_) => Err(RejectReason::Truncated),
            };
            out.push((entry, result));
        }
        Ok(out)
    }

    /// Removes quarantined/temp leftovers, then evicts artifacts by recency
    /// until the store fits its byte budget.
    pub fn gc(&self) -> io::Result<GcStats> {
        let mut stats = GcStats::default();
        let dir = match fs::read_dir(&self.dir) {
            Ok(dir) => dir,
            Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(stats),
            Err(err) => return Err(err),
        };
        let mut artifacts: Vec<(SystemTime, u64, PathBuf)> = Vec::new();
        for entry in dir {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let is_artifact = artifact_fingerprint_of(&path).is_some();
            let is_junk = name.ends_with(REJECTED_SUFFIX) || name.contains(".tmp.");
            if is_junk {
                if fs::remove_file(&path).is_ok() {
                    stats.junk_removed += 1;
                }
                continue;
            }
            if is_artifact {
                let meta = entry.metadata()?;
                let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                artifacts.push((mtime, meta.len(), path));
            }
        }
        let mut total: u64 = artifacts.iter().map(|(_, len, _)| len).sum();
        if let Some(budget) = self.max_bytes {
            // Oldest first; ties broken by size then path for determinism.
            artifacts.sort();
            let mut victims = artifacts.iter();
            while total > budget {
                let Some((_, len, path)) = victims.next() else {
                    break;
                };
                if fs::remove_file(path).is_ok() {
                    total -= len;
                    stats.evicted += 1;
                }
            }
        }
        stats.remaining_bytes = total;
        Ok(stats)
    }
}

/// Parses and validates an artifact file.
///
/// `expect_fingerprint`/`expect_signature` of `None` skip that check (used
/// by `verify`, which has no options signature to compare against).
pub fn parse_artifact(
    bytes: &[u8],
    expect_fingerprint: Option<u64>,
    expect_signature: Option<u64>,
) -> Result<(ArtifactHeader, &[u8]), RejectReason> {
    if bytes.len() < HEADER_LEN {
        return Err(RejectReason::Truncated);
    }
    if &bytes[0..8] != ARTIFACT_MAGIC {
        return Err(RejectReason::Magic);
    }
    let u32_at = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
    let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
    let header = ArtifactHeader {
        version: u32_at(8),
        fingerprint: u64_at(12),
        signature: u64_at(20),
        payload_len: u64_at(28),
        checksum: u64_at(36),
    };
    if header.version != ARTIFACT_FORMAT_VERSION {
        return Err(RejectReason::Version(header.version));
    }
    if expect_fingerprint.is_some_and(|fp| fp != header.fingerprint) {
        return Err(RejectReason::Fingerprint);
    }
    if expect_signature.is_some_and(|sig| sig != header.signature) {
        return Err(RejectReason::Signature);
    }
    let payload = &bytes[HEADER_LEN..];
    if payload.len() as u64 != header.payload_len {
        return Err(RejectReason::Truncated);
    }
    if fnv64(payload) != header.checksum {
        return Err(RejectReason::Checksum);
    }
    Ok((header, payload))
}

/// Parses the fingerprint out of an artifact file name, or `None` for files
/// that are not well-formed artifacts (temp files, quarantined files, ...).
fn artifact_fingerprint_of(path: &Path) -> Option<u64> {
    if path.extension()?.to_str()? != ARTIFACT_EXT {
        return None;
    }
    let stem = path.file_stem()?.to_str()?;
    if stem.len() != 16 {
        return None;
    }
    u64::from_str_radix(stem, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(label: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "spec-store-test-{label}-{}-{}",
                std::process::id(),
                STORE_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            fs::create_dir_all(&dir).unwrap();
            Self(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn save_then_load_round_trips() {
        let tmp = TempDir::new("roundtrip");
        let store = ArtifactStore::new(&tmp.0);
        let payload = b"hello artifact".to_vec();
        store.save(0xabc, 7, &payload).unwrap();
        match store.load(0xabc, 7) {
            LoadOutcome::Loaded(bytes) => assert_eq!(bytes, payload),
            other => panic!("expected load, got {other:?}"),
        }
    }

    #[test]
    fn missing_and_mismatched_lookups() {
        let tmp = TempDir::new("mismatch");
        let store = ArtifactStore::new(&tmp.0);
        assert!(matches!(store.load(1, 1), LoadOutcome::Missing));
        store.save(2, 5, b"x").unwrap();
        // Wrong signature: rejected and quarantined.
        match store.load(2, 6) {
            LoadOutcome::Rejected(RejectReason::Signature) => {}
            other => panic!("expected signature reject, got {other:?}"),
        }
        // Quarantine means the next lookup misses.
        assert!(matches!(store.load(2, 5), LoadOutcome::Missing));
    }

    #[test]
    fn corruption_is_detected_and_quarantined() {
        let tmp = TempDir::new("corrupt");
        let store = ArtifactStore::new(&tmp.0);
        store.save(3, 1, b"some payload bytes").unwrap();
        store.save(4, 1, b"another payload").unwrap();
        store.save(5, 1, b"versioned").unwrap();

        // Flip one payload byte.
        let path = store.path_for(3);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.load(3, 1),
            LoadOutcome::Rejected(RejectReason::Checksum)
        ));

        // Truncation.
        let path = store.path_for(4);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(
            store.load(4, 1),
            LoadOutcome::Rejected(RejectReason::Truncated)
        ));

        // Stale version.
        let path = store.path_for(5);
        let mut bytes = fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&(ARTIFACT_FORMAT_VERSION + 1).to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.load(5, 1),
            LoadOutcome::Rejected(RejectReason::Version(_))
        ));

        // All three quarantined files are junk-collected.
        let stats = store.gc().unwrap();
        assert_eq!(stats.junk_removed, 3);
        assert_eq!(store.entries().unwrap().len(), 0);
    }

    #[test]
    fn gc_enforces_byte_budget_by_recency() {
        let tmp = TempDir::new("gc");
        let payload = vec![0u8; 100];
        let unbounded = ArtifactStore::new(&tmp.0);
        for fp in 0..4u64 {
            unbounded.save(fp, 1, &payload).unwrap();
        }
        // Touch artifact 0 so it is the most recent.
        let old = SystemTime::now() - std::time::Duration::from_secs(3600);
        for fp in 1..4u64 {
            let file = fs::File::open(unbounded.path_for(fp)).unwrap();
            file.set_times(fs::FileTimes::new().set_modified(old))
                .unwrap();
        }
        // Budget for two files of 144 bytes each.
        let store = ArtifactStore::new(&tmp.0).with_max_bytes(Some(290));
        let stats = store.gc().unwrap();
        assert_eq!(stats.evicted, 2);
        assert!(stats.remaining_bytes <= 290);
        assert!(store.path_for(0).exists(), "most recent survives");
        let survivors = store.entries().unwrap().len();
        assert_eq!(survivors, 2);
    }

    #[test]
    fn verify_reports_without_quarantining() {
        let tmp = TempDir::new("verify");
        let store = ArtifactStore::new(&tmp.0);
        store.save(10, 1, b"good").unwrap();
        store.save(11, 1, b"bad").unwrap();
        let path = store.path_for(11);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();

        let results = store.verify().unwrap();
        assert_eq!(results.len(), 2);
        assert!(results[0].1.is_ok());
        assert_eq!(results[1].1, Err(RejectReason::Checksum));
        // Both files are still listed afterwards.
        assert_eq!(store.entries().unwrap().len(), 2);
    }
}
