//! Std-only telemetry for the serving stack.
//!
//! The crate provides four small pieces that together give a running fleet
//! real observability without touching the bytes of any response:
//!
//! - a [`Registry`] of named metric families — atomic [`Counter`]s,
//!   [`Gauge`]s, and fixed-boundary log₂-bucket latency [`Histogram`]s —
//!   rendered on demand in Prometheus text-exposition format;
//! - a lock-free record path: handles are `Arc`-shared atomics, so the hot
//!   path never takes a lock (the registry mutex guards only registration
//!   and snapshotting);
//! - a [`Span`] RAII timer that records an elapsed phase duration into a
//!   histogram when dropped (or explicitly via [`Span::finish`], which also
//!   hands the duration back for trace logging);
//! - a [`TraceLog`] — a bounded channel feeding a dedicated writer thread,
//!   so emitting one NDJSON event per request never blocks a worker on
//!   disk.  When the channel is full the event is dropped and counted, not
//!   queued: telemetry sheds load before the service does.
//!
//! Histogram buckets are powers of two starting at 1µs, so a recorded
//! quantile estimate is never more than 2× the true value — good enough to
//! tell "the p99 lives in prepare, not run", which is what phase timing is
//! for.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::{self, BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Number of finite histogram buckets: upper bounds 1µs << k for
/// k in 0..28, i.e. 1µs up to ~134s; anything slower lands in +Inf.
pub const FINITE_BUCKETS: usize = 28;

/// Upper bound of finite bucket `k`, in nanoseconds.
fn bound_nanos(k: usize) -> u64 {
    1000u64 << k
}

/// Upper bound of finite bucket `k`, in seconds (the `le` label value).
///
/// Divides rather than multiplying by `1e-9`: the quotient rounds to the
/// canonical double for the decimal value, so `le` labels render as
/// `0.000001` instead of `0.0000010000000000000002`.
fn bound_secs(k: usize) -> f64 {
    bound_nanos(k) as f64 / 1e9
}

/// The finite bucket a duration of `nanos` falls into, or `FINITE_BUCKETS`
/// for the overflow (+Inf) bucket.
fn bucket_index(nanos: u64) -> usize {
    if nanos <= 1000 {
        return 0;
    }
    let k = 64 - ((nanos - 1) / 1000).leading_zeros() as usize;
    k.min(FINITE_BUCKETS)
}

// ---------------------------------------------------------------------------
// Metric handles
// ---------------------------------------------------------------------------

/// A monotonically increasing atomic counter.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// A settable gauge holding an `f64` (stored as bits in an atomic).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

struct HistogramCore {
    /// `FINITE_BUCKETS` finite buckets plus the +Inf overflow slot.
    buckets: [AtomicU64; FINITE_BUCKETS + 1],
    sum_nanos: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_nanos: AtomicU64::new(0),
        }
    }
}

/// A fixed-boundary log₂-bucket latency histogram.
///
/// Recording is two relaxed `fetch_add`s — no locks, no allocation.  Reads
/// go through [`Histogram::snapshot`], which loads every bucket once and
/// derives the count from the bucket sums, so one snapshot is internally
/// consistent by construction.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCore::new()))
    }
}

impl Histogram {
    pub fn record(&self, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.0.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.0.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Start an RAII phase timer that records into this histogram.
    pub fn span(&self) -> Span {
        Span {
            histogram: Some(self.clone()),
            started: Instant::now(),
        }
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: buckets.iter().sum(),
            buckets,
            sum_nanos: self.0.sum_nanos.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a histogram's buckets.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) observation counts; the last entry is
    /// the +Inf overflow bucket.
    pub buckets: Vec<u64>,
    pub sum_nanos: u64,
    pub count: u64,
}

impl HistogramSnapshot {
    /// Upper bound, in seconds, of finite bucket `k`.
    pub fn bound_secs(k: usize) -> f64 {
        bound_secs(k)
    }

    /// Estimate the `q`-quantile (0 < q ≤ 1) in seconds: the upper bound
    /// of the first bucket whose cumulative count reaches `q * count`.
    /// Log₂ buckets bound the overestimate at 2× the true value; the +Inf
    /// bucket reports the largest finite bound.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bound_secs(k.min(FINITE_BUCKETS - 1));
            }
        }
        bound_secs(FINITE_BUCKETS - 1)
    }

    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    pub fn sum_secs(&self) -> f64 {
        self.sum_nanos as f64 / 1e9
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count)
            .field("sum_nanos", &snap.sum_nanos)
            .finish()
    }
}

/// An RAII phase timer: created by [`Histogram::span`], records the
/// elapsed wall time into its histogram when dropped.
pub struct Span {
    histogram: Option<Histogram>,
    started: Instant,
}

impl Span {
    /// Stop the timer now, record the duration, and hand it back (for a
    /// trace-log event that wants the same number the histogram saw).
    pub fn finish(mut self) -> Duration {
        let elapsed = self.started.elapsed();
        if let Some(histogram) = self.histogram.take() {
            histogram.record(elapsed);
        }
        elapsed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(histogram) = self.histogram.take() {
            histogram.record(self.started.elapsed());
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn exposition_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

type LabelSet = Vec<(String, String)>;

struct Family {
    kind: MetricKind,
    help: String,
    series: BTreeMap<LabelSet, Handle>,
}

/// A registry of named metric families.
///
/// Registration is idempotent: asking for the same `(name, labels)` twice
/// returns a handle to the same underlying atomics, so call sites may
/// pre-register hot handles at startup and look up cold ones lazily.
/// Registering a name under two different kinds is a programming error and
/// panics.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    fn family<'a>(
        guard: &'a mut MutexGuard<'_, BTreeMap<String, Family>>,
        name: &str,
        kind: MetricKind,
        help: &str,
    ) -> &'a mut Family {
        let family = guard.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric `{name}` registered as {:?} and {kind:?}",
            family.kind
        );
        family
    }

    fn labels(labels: &[(&str, &str)]) -> LabelSet {
        labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let mut guard = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let family = Self::family(&mut guard, name, MetricKind::Counter, help);
        let handle = family
            .series
            .entry(Self::labels(labels))
            .or_insert_with(|| Handle::Counter(Counter::default()));
        match handle {
            Handle::Counter(counter) => counter.clone(),
            _ => unreachable!("kind checked above"),
        }
    }

    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let mut guard = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let family = Self::family(&mut guard, name, MetricKind::Gauge, help);
        let handle = family
            .series
            .entry(Self::labels(labels))
            .or_insert_with(|| Handle::Gauge(Gauge::default()));
        match handle {
            Handle::Gauge(gauge) => gauge.clone(),
            _ => unreachable!("kind checked above"),
        }
    }

    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        let mut guard = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let family = Self::family(&mut guard, name, MetricKind::Histogram, help);
        let handle = family
            .series
            .entry(Self::labels(labels))
            .or_insert_with(|| Handle::Histogram(Histogram::default()));
        match handle {
            Handle::Histogram(histogram) => histogram.clone(),
            _ => unreachable!("kind checked above"),
        }
    }

    /// One consistent point-in-time copy of every registered series.
    pub fn snapshot(&self) -> Snapshot {
        let guard = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let mut series = Vec::new();
        for (name, family) in guard.iter() {
            for (labels, handle) in &family.series {
                let value = match handle {
                    Handle::Counter(c) => Value::Counter(c.get()),
                    Handle::Gauge(g) => Value::Gauge(g.get()),
                    Handle::Histogram(h) => Value::Histogram(h.snapshot()),
                };
                series.push(SeriesSnapshot {
                    name: name.clone(),
                    help: family.help.clone(),
                    labels: labels.clone(),
                    value,
                });
            }
        }
        Snapshot { series }
    }

    /// Render every registered series in Prometheus text-exposition
    /// format.
    pub fn render(&self) -> String {
        self.snapshot().render()
    }
}

/// One series out of a [`Snapshot`].
#[derive(Clone)]
pub struct SeriesSnapshot {
    pub name: String,
    pub help: String,
    pub labels: Vec<(String, String)>,
    pub value: Value,
}

/// The value of one snapshotted series.
#[derive(Clone)]
pub enum Value {
    Counter(u64),
    Gauge(f64),
    Histogram(HistogramSnapshot),
}

/// A point-in-time copy of a whole registry.
pub struct Snapshot {
    pub series: Vec<SeriesSnapshot>,
}

impl Snapshot {
    /// Sum of every counter series under `name`.
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.counter_sum_where(name, |_| true)
    }

    /// Sum of the counter series under `name` whose label set satisfies
    /// the predicate.
    pub fn counter_sum_where(&self, name: &str, pred: impl Fn(&[(String, String)]) -> bool) -> u64 {
        self.series
            .iter()
            .filter(|s| s.name == name && pred(&s.labels))
            .map(|s| match &s.value {
                Value::Counter(n) => *n,
                _ => 0,
            })
            .sum()
    }

    /// Render the snapshot in Prometheus text-exposition format:
    /// `# HELP`/`# TYPE` headers per family, `_bucket`/`_sum`/`_count`
    /// series per histogram, label values escaped per the spec.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut last_family: Option<&str> = None;
        for series in &self.series {
            if last_family != Some(series.name.as_str()) {
                let kind = match &series.value {
                    Value::Counter(_) => MetricKind::Counter,
                    Value::Gauge(_) => MetricKind::Gauge,
                    Value::Histogram(_) => MetricKind::Histogram,
                };
                let _ = writeln!(out, "# HELP {} {}", series.name, escape_help(&series.help));
                let _ = writeln!(out, "# TYPE {} {}", series.name, kind.exposition_name());
                last_family = Some(series.name.as_str());
            }
            match &series.value {
                Value::Counter(n) => {
                    let _ = writeln!(out, "{}{} {n}", series.name, render_labels(&series.labels));
                }
                Value::Gauge(v) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        series.name,
                        render_labels(&series.labels),
                        format_float(*v)
                    );
                }
                Value::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (k, &n) in h.buckets.iter().enumerate() {
                        cumulative += n;
                        let le = if k == FINITE_BUCKETS {
                            "+Inf".to_string()
                        } else {
                            format_float(bound_secs(k))
                        };
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cumulative}",
                            series.name,
                            render_labels_with(&series.labels, ("le", &le)),
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        series.name,
                        render_labels(&series.labels),
                        format_float(h.sum_secs())
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        series.name,
                        render_labels(&series.labels),
                        h.count
                    );
                }
            }
        }
        out
    }
}

/// Escape a label value per the Prometheus text-exposition rules
/// (backslash, double quote, newline).  Public so aggregators that splice
/// extra labels into scraped exposition text (the gateway) escape the same
/// way the renderer does.
pub fn escape_label(value: &str) -> String {
    let mut escaped = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => escaped.push_str("\\\\"),
            '"' => escaped.push_str("\\\""),
            '\n' => escaped.push_str("\\n"),
            other => escaped.push(other),
        }
    }
    escaped
}

fn escape_help(value: &str) -> String {
    let mut escaped = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => escaped.push_str("\\\\"),
            '\n' => escaped.push_str("\\n"),
            other => escaped.push(other),
        }
    }
    escaped
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

fn render_labels_with(labels: &[(String, String)], extra: (&str, &str)) -> String {
    let mut body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    body.push(format!("{}=\"{}\"", extra.0, escape_label(extra.1)));
    format!("{{{}}}", body.join(","))
}

/// Render an `f64` the way Prometheus expects: plain decimal for finite
/// values (Rust's shortest-roundtrip `Display`), `+Inf`/`-Inf`/`NaN`
/// otherwise.
fn format_float(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_string()
    } else if value.is_infinite() {
        if value > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        let mut text = format!("{value}");
        if !text.contains('.') && !text.contains('e') {
            text.push_str(".0");
        }
        text
    }
}

// ---------------------------------------------------------------------------
// Trace log
// ---------------------------------------------------------------------------

/// How many trace events may queue between the workers and the writer
/// thread before new events are shed.
const TRACE_CHANNEL_CAPACITY: usize = 1024;

enum TraceMessage {
    Line(String),
}

/// A cheap cloneable handle for emitting trace events.
///
/// `emit` never blocks: when the writer falls behind and the channel is
/// full, the event is dropped and counted in `dropped` instead.
#[derive(Clone)]
pub struct TraceSender {
    tx: SyncSender<TraceMessage>,
    dropped: Arc<AtomicU64>,
}

impl TraceSender {
    /// Queue one NDJSON line (without trailing newline) for the writer
    /// thread.  Returns `false` if the event was shed.
    pub fn emit(&self, line: String) -> bool {
        match self.tx.try_send(TraceMessage::Line(line)) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Events shed so far because the writer could not keep up.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// An NDJSON event log written by a dedicated thread fed from a bounded
/// channel.  Dropping the `TraceLog` closes the channel, drains whatever
/// is queued, flushes, and joins the writer.
pub struct TraceLog {
    sender: TraceSender,
    writer: Option<JoinHandle<()>>,
}

impl TraceLog {
    /// Open (append/create) `path` and start the writer thread.
    pub fn create(path: &Path) -> io::Result<TraceLog> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let (tx, rx) = sync_channel(TRACE_CHANNEL_CAPACITY);
        let writer = std::thread::Builder::new()
            .name("trace-log".to_string())
            .spawn(move || Self::writer_loop(rx, BufWriter::new(file)))?;
        Ok(TraceLog {
            sender: TraceSender {
                tx,
                dropped: Arc::new(AtomicU64::new(0)),
            },
            writer: Some(writer),
        })
    }

    fn writer_loop(rx: Receiver<TraceMessage>, mut out: BufWriter<std::fs::File>) {
        // Block for the next event; when the queue momentarily runs dry,
        // flush so a tailing reader sees complete lines.
        while let Ok(TraceMessage::Line(line)) = rx.recv() {
            let _ = out.write_all(line.as_bytes());
            let _ = out.write_all(b"\n");
            while let Ok(TraceMessage::Line(line)) = rx.try_recv() {
                let _ = out.write_all(line.as_bytes());
                let _ = out.write_all(b"\n");
            }
            let _ = out.flush();
        }
        let _ = out.flush();
    }

    /// A cloneable emit handle for worker threads.
    pub fn sender(&self) -> TraceSender {
        self.sender.clone()
    }
}

impl Drop for TraceLog {
    fn drop(&mut self) {
        // Close our send side so the writer's recv() unblocks once every
        // worker clone is gone, then wait for the drain.
        let (orphan_tx, _orphan_rx) = sync_channel(1);
        drop(std::mem::replace(&mut self.sender.tx, orphan_tx));
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
    }
}

/// Escape a string for embedding in a JSON string literal (the subset the
/// trace log needs: control characters, quotes, backslashes).
pub fn json_escape(value: &str) -> String {
    let mut escaped = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '"' => escaped.push_str("\\\""),
            '\\' => escaped.push_str("\\\\"),
            '\n' => escaped.push_str("\\n"),
            '\r' => escaped.push_str("\\r"),
            '\t' => escaped.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(escaped, "\\u{:04x}", c as u32);
            }
            other => escaped.push(other),
        }
    }
    escaped
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1000), 0);
        assert_eq!(bucket_index(1001), 1);
        assert_eq!(bucket_index(2000), 1);
        assert_eq!(bucket_index(2001), 2);
        assert_eq!(
            bucket_index(bound_nanos(FINITE_BUCKETS - 1)),
            FINITE_BUCKETS - 1
        );
        assert_eq!(
            bucket_index(bound_nanos(FINITE_BUCKETS - 1) + 1),
            FINITE_BUCKETS
        );
        assert_eq!(bucket_index(u64::MAX), FINITE_BUCKETS);
    }

    #[test]
    fn histogram_records_and_estimates_quantiles() {
        let h = Histogram::default();
        for micros in [1u64, 10, 100, 1000, 10_000] {
            h.record(Duration::from_micros(micros));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        let true_p50 = 100e-6;
        let estimate = snap.p50();
        assert!(
            estimate >= true_p50 && estimate <= 2.0 * true_p50,
            "{estimate}"
        );
    }

    #[test]
    fn span_records_on_drop_and_finish() {
        let h = Histogram::default();
        {
            let _span = h.span();
        }
        let elapsed = h.span().finish();
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert!(snap.sum_nanos >= elapsed.as_nanos() as u64);
    }

    #[test]
    fn registry_is_idempotent_and_renders_exposition() {
        let registry = Registry::new();
        let c1 = registry.counter("t_total", "total things", &[("kind", "a")]);
        let c2 = registry.counter("t_total", "total things", &[("kind", "a")]);
        c1.inc();
        c2.add(2);
        assert_eq!(c1.get(), 3);
        registry.gauge("t_gauge", "a gauge", &[]).set(1.5);
        registry
            .histogram("t_seconds", "latency", &[("phase", "run")])
            .record(Duration::from_micros(3));
        let text = registry.render();
        assert!(text.contains("# TYPE t_total counter"));
        assert!(text.contains("t_total{kind=\"a\"} 3"));
        assert!(text.contains("t_gauge 1.5"));
        assert!(text.contains("# TYPE t_seconds histogram"));
        assert!(text.contains("t_seconds_bucket{phase=\"run\",le=\"+Inf\"} 1"));
        assert!(text.contains("t_seconds_count{phase=\"run\"} 1"));
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = Registry::new();
        registry
            .counter("esc_total", "escape test", &[("v", "a\"b\\c\nd")])
            .inc();
        let text = registry.render();
        assert!(text.contains("esc_total{v=\"a\\\"b\\\\c\\nd\"} 1"));
    }

    #[test]
    fn trace_log_writes_lines_and_drains_on_drop() {
        let dir = std::env::temp_dir().join(format!("spec-telemetry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.ndjson");
        let _ = std::fs::remove_file(&path);
        {
            let log = TraceLog::create(&path).unwrap();
            let sender = log.sender();
            for i in 0..10 {
                assert!(sender.emit(format!("{{\"i\": {i}}}")));
            }
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 10);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn json_escape_handles_controls() {
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
