//! Instruction-granularity control-flow graph.
//!
//! Speculation depth is counted in instructions, and rollback can happen
//! after any speculatively executed instruction, so the speculative analysis
//! works at instruction rather than basic-block granularity.  [`InstGraph`]
//! gives every instruction and every block terminator its own node.

use std::collections::HashMap;
use std::fmt;

use spec_ir::heap::HeapSize;
use spec_ir::{BlockId, Condition, Inst, MemRef, Program, Terminator};

/// Identifier of a node in an [`InstGraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from a raw index.
    pub fn from_raw(raw: u32) -> Self {
        Self(raw)
    }

    /// Raw index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a graph node represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// The `index`-th straight-line instruction of `block`.
    Inst {
        /// Owning basic block.
        block: BlockId,
        /// Position within the block's instruction list.
        index: usize,
    },
    /// The terminator of `block` (where a branch condition is evaluated).
    Terminator {
        /// Owning basic block.
        block: BlockId,
    },
}

impl NodeKind {
    /// The owning basic block.
    pub fn block(&self) -> BlockId {
        match self {
            NodeKind::Inst { block, .. } | NodeKind::Terminator { block } => *block,
        }
    }
}

/// Instruction-level CFG of a program.
#[derive(Clone, Debug)]
pub struct InstGraph {
    kinds: Vec<NodeKind>,
    successors: Vec<Vec<NodeId>>,
    predecessors: Vec<Vec<NodeId>>,
    entry: NodeId,
    first_node_of_block: HashMap<BlockId, NodeId>,
}

impl InstGraph {
    /// Flattens `program` into an instruction-level graph.
    pub fn new(program: &Program) -> Self {
        let mut kinds = Vec::new();
        let mut first_node_of_block = HashMap::new();
        // First pass: allocate nodes per block (instructions then terminator).
        let mut block_nodes: Vec<Vec<NodeId>> = Vec::with_capacity(program.blocks().len());
        for block in program.blocks() {
            let mut nodes = Vec::with_capacity(block.insts.len() + 1);
            for index in 0..block.insts.len() {
                let id = NodeId(kinds.len() as u32);
                kinds.push(NodeKind::Inst {
                    block: block.id,
                    index,
                });
                nodes.push(id);
            }
            let term_id = NodeId(kinds.len() as u32);
            kinds.push(NodeKind::Terminator { block: block.id });
            nodes.push(term_id);
            first_node_of_block.insert(block.id, nodes[0]);
            block_nodes.push(nodes);
        }
        // Second pass: edges.
        let mut successors = vec![Vec::new(); kinds.len()];
        for block in program.blocks() {
            let nodes = &block_nodes[block.id.index()];
            for pair in nodes.windows(2) {
                successors[pair[0].index()].push(pair[1]);
            }
            let term = *nodes.last().expect("every block has a terminator node");
            for succ_block in block.term.successors() {
                let target = first_node_of_block[&succ_block];
                successors[term.index()].push(target);
            }
        }
        let mut predecessors = vec![Vec::new(); kinds.len()];
        for (from, succs) in successors.iter().enumerate() {
            for to in succs {
                predecessors[to.index()].push(NodeId(from as u32));
            }
        }
        let entry = first_node_of_block[&program.entry()];
        Self {
            kinds,
            successors,
            predecessors,
            entry,
            first_node_of_block,
        }
    }

    /// Rebuilds a graph from its serialized parts.
    ///
    /// `kinds`, `successors` and `entry` fully determine the graph: the
    /// predecessor lists and the first-node-of-block table are derived from
    /// them exactly as [`InstGraph::new`] derives them (predecessors in
    /// ascending source-node order; a block's first node is its first
    /// allocated node).  Returns `None` if the parts are structurally
    /// inconsistent — mismatched lengths, an empty graph, or out-of-range
    /// node ids — so corrupt serialized input degrades to a decode error
    /// rather than a panic.
    pub fn from_parts(
        kinds: Vec<NodeKind>,
        successors: Vec<Vec<NodeId>>,
        entry: NodeId,
    ) -> Option<Self> {
        let len = kinds.len();
        if len == 0 || len > u32::MAX as usize || successors.len() != len {
            return None;
        }
        if entry.index() >= len || successors.iter().flatten().any(|n| n.index() >= len) {
            return None;
        }
        let mut predecessors = vec![Vec::new(); len];
        for (from, succs) in successors.iter().enumerate() {
            for to in succs {
                predecessors[to.index()].push(NodeId(from as u32));
            }
        }
        let mut first_node_of_block = HashMap::new();
        for (index, kind) in kinds.iter().enumerate() {
            first_node_of_block
                .entry(kind.block())
                .or_insert(NodeId(index as u32));
        }
        Some(Self {
            kinds,
            successors,
            predecessors,
            entry,
            first_node_of_block,
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Returns `true` if the graph has no nodes (never the case for a valid program).
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The entry node (first instruction of the entry block).
    pub fn entry(&self) -> NodeId {
        self.entry
    }

    /// The kind of `node`.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.kinds[node.index()]
    }

    /// Successor nodes.
    pub fn successors(&self, node: NodeId) -> &[NodeId] {
        &self.successors[node.index()]
    }

    /// Predecessor nodes.
    pub fn predecessors(&self, node: NodeId) -> &[NodeId] {
        &self.predecessors[node.index()]
    }

    /// First node (first instruction or the terminator for empty blocks) of `block`.
    pub fn first_node_of_block(&self, block: BlockId) -> NodeId {
        self.first_node_of_block[&block]
    }

    /// All node ids in order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.kinds.len() as u32).map(NodeId)
    }

    /// The instruction at `node`, if it is an instruction node.
    pub fn instruction<'p>(&self, program: &'p Program, node: NodeId) -> Option<&'p Inst> {
        match self.kind(node) {
            NodeKind::Inst { block, index } => Some(&program.block(block).insts[index]),
            NodeKind::Terminator { .. } => None,
        }
    }

    /// The memory reference accessed at `node`, if any.
    pub fn memory_ref(&self, program: &Program, node: NodeId) -> Option<MemRef> {
        self.instruction(program, node).and_then(Inst::mem_ref)
    }

    /// The branch condition evaluated at `node`, if it is a conditional
    /// branch terminator.
    pub fn branch_condition<'p>(
        &self,
        program: &'p Program,
        node: NodeId,
    ) -> Option<&'p Condition> {
        match self.kind(node) {
            NodeKind::Terminator { block } => program.block(block).term.condition(),
            NodeKind::Inst { .. } => None,
        }
    }

    /// The branch targets `(then, else)` if `node` is a conditional branch terminator.
    pub fn branch_targets(&self, program: &Program, node: NodeId) -> Option<(BlockId, BlockId)> {
        match self.kind(node) {
            NodeKind::Terminator { block } => match &program.block(block).term {
                Terminator::Branch {
                    then_bb, else_bb, ..
                } => Some((*then_bb, *else_bb)),
                _ => None,
            },
            NodeKind::Inst { .. } => None,
        }
    }

    /// Breadth-first instruction distances from `start`, following forward
    /// edges, up to `max_distance` instructions.  The start node has
    /// distance 1 ("one speculatively executed instruction"); terminator
    /// nodes are free (they do not consume speculation budget).
    pub fn distances_within(&self, start: NodeId, max_distance: u32) -> HashMap<NodeId, u32> {
        let mut dist: HashMap<NodeId, u32> = HashMap::new();
        let start_cost = match self.kind(start) {
            NodeKind::Inst { .. } => 1,
            NodeKind::Terminator { .. } => 0,
        };
        if start_cost > max_distance {
            return dist;
        }
        dist.insert(start, start_cost);
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(node) = queue.pop_front() {
            let d = dist[&node];
            for &succ in self.successors(node) {
                let cost = match self.kind(succ) {
                    NodeKind::Inst { .. } => 1,
                    NodeKind::Terminator { .. } => 0,
                };
                let nd = d + cost;
                if nd > max_distance {
                    continue;
                }
                let better = dist.get(&succ).is_none_or(|existing| nd < *existing);
                if better {
                    dist.insert(succ, nd);
                    queue.push_back(succ);
                }
            }
        }
        dist
    }
}

spec_ir::zero_heap_size!(NodeId, NodeKind);

impl HeapSize for InstGraph {
    fn heap_size(&self) -> usize {
        self.kinds.heap_size()
            + self.successors.heap_size()
            + self.predecessors.heap_size()
            + self.first_node_of_block.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_ir::builder::ProgramBuilder;
    use spec_ir::{BranchSemantics, IndexExpr};

    fn branchy_program() -> (Program, BlockId, BlockId, BlockId, BlockId) {
        let mut b = ProgramBuilder::new("branchy");
        let t = b.region("t", 256, false);
        let p = b.region("p", 8, false);
        let entry = b.entry_block("entry");
        let then_bb = b.block("then");
        let else_bb = b.block("else");
        let join = b.block("join");
        b.load(entry, p, IndexExpr::Const(0));
        b.data_branch(
            entry,
            vec![MemRef::at(p, 0)],
            BranchSemantics::InputBit { bit: 0 },
            then_bb,
            else_bb,
        );
        b.load(then_bb, t, IndexExpr::Const(0));
        b.jump(then_bb, join);
        b.load(else_bb, t, IndexExpr::Const(64));
        b.compute(else_bb, 1);
        b.jump(else_bb, join);
        b.load(join, t, IndexExpr::Const(0));
        b.ret(join);
        (b.finish().unwrap(), entry, then_bb, else_bb, join)
    }

    #[test]
    fn node_count_is_instructions_plus_terminators() {
        let (p, ..) = branchy_program();
        let g = InstGraph::new(&p);
        assert_eq!(g.len(), p.instruction_count() + p.blocks().len());
        assert!(!g.is_empty());
    }

    #[test]
    fn entry_is_first_instruction_of_entry_block() {
        let (p, entry, ..) = branchy_program();
        let g = InstGraph::new(&p);
        assert_eq!(g.entry(), g.first_node_of_block(entry));
        assert!(matches!(g.kind(g.entry()), NodeKind::Inst { index: 0, .. }));
    }

    #[test]
    fn straight_line_edges_within_a_block() {
        let (p, _, _, else_bb, _) = branchy_program();
        let g = InstGraph::new(&p);
        let first = g.first_node_of_block(else_bb);
        // load -> compute -> terminator
        let second = g.successors(first)[0];
        assert!(matches!(g.kind(second), NodeKind::Inst { index: 1, .. }));
        let term = g.successors(second)[0];
        assert!(matches!(g.kind(term), NodeKind::Terminator { .. }));
        assert_eq!(g.predecessors(second), &[first]);
    }

    #[test]
    fn branch_terminator_fans_out_to_both_arms() {
        let (p, entry, then_bb, else_bb, _) = branchy_program();
        let g = InstGraph::new(&p);
        // entry block: load, then terminator.
        let load = g.first_node_of_block(entry);
        let term = g.successors(load)[0];
        assert!(g.branch_condition(&p, term).is_some());
        assert_eq!(g.branch_targets(&p, term), Some((then_bb, else_bb)));
        let succs = g.successors(term);
        assert_eq!(succs.len(), 2);
        assert_eq!(succs[0], g.first_node_of_block(then_bb));
        assert_eq!(succs[1], g.first_node_of_block(else_bb));
        assert!(g.branch_condition(&p, load).is_none());
    }

    #[test]
    fn memory_refs_are_exposed_per_node() {
        let (p, entry, ..) = branchy_program();
        let g = InstGraph::new(&p);
        let load = g.first_node_of_block(entry);
        let m = g.memory_ref(&p, load).expect("entry starts with a load");
        assert_eq!(p.region(m.region).name, "p");
        let term = g.successors(load)[0];
        assert!(g.memory_ref(&p, term).is_none());
    }

    #[test]
    fn distances_count_instructions_not_terminators() {
        let (p, _, then_bb, _, join) = branchy_program();
        let g = InstGraph::new(&p);
        let start = g.first_node_of_block(then_bb);
        let dist = g.distances_within(start, 10);
        assert_eq!(dist[&start], 1);
        // then-block terminator costs nothing extra.
        let term = g.successors(start)[0];
        assert_eq!(dist[&term], 1);
        // first instruction of the join block is the second instruction.
        let join_first = g.first_node_of_block(join);
        assert_eq!(dist[&join_first], 2);
    }

    #[test]
    fn distances_respect_the_budget() {
        let (p, _, then_bb, _, join) = branchy_program();
        let g = InstGraph::new(&p);
        let start = g.first_node_of_block(then_bb);
        let dist = g.distances_within(start, 1);
        assert!(dist.contains_key(&start));
        assert!(!dist.contains_key(&g.first_node_of_block(join)));
    }

    #[test]
    fn empty_block_first_node_is_its_terminator() {
        let mut b = ProgramBuilder::new("empty-block");
        let entry = b.entry_block("entry");
        let empty = b.block("empty");
        let exit = b.block("exit");
        b.jump(entry, empty);
        b.jump(empty, exit);
        b.ret(exit);
        let p = b.finish().unwrap();
        let g = InstGraph::new(&p);
        let n = g.first_node_of_block(empty);
        assert!(matches!(g.kind(n), NodeKind::Terminator { .. }));
    }
}
