//! # spec-vcfg
//!
//! Virtual control flow for speculative execution (Section 5 of the paper).
//!
//! The crate flattens a [`spec_ir::Program`] into an instruction-granularity
//! graph ([`InstGraph`]) and augments it with *speculation sites*: for every
//! conditional branch whose condition depends on memory, two colored sites
//! describe the processor speculatively executing the *wrong* arm for up to
//! a bounded number of instructions and then rolling back into the correct
//! arm.  The result ([`Vcfg`]) is what the speculative abstract
//! interpretation in `spec-core` iterates over.
//!
//! The key pieces:
//!
//! * [`InstGraph`] — one node per instruction plus one per terminator, with
//!   ordinary control-flow edges.
//! * [`SpeculationSite`] / [`Color`] — one per (branch, mispredicted arm):
//!   the speculative region (nodes reachable within the maximum speculation
//!   window), per-node instruction distances for dynamic depth bounding
//!   (Section 6.2), the resume region in the correct arm, and the commit
//!   node where the speculative state is folded back into the normal state.
//! * [`MergeStrategy`] — where speculative and normal states merge
//!   (Figure 6): just-in-time (6c, the paper's choice) or at the rollback
//!   point (6d, the aggressive baseline used in Table 6).

pub mod inst_graph;
pub mod speculation;
pub mod vcfg;

pub use inst_graph::{InstGraph, NodeId, NodeKind};
pub use speculation::{Color, MergeStrategy, SpeculationConfig, SpeculationSite};
pub use vcfg::Vcfg;
