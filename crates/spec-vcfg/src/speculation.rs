//! Speculation sites, colors, and the merge-strategy / depth configuration.

use std::collections::HashMap;
use std::fmt;

use spec_ir::heap::HeapSize;
use spec_ir::{BlockId, MemRef};

use crate::inst_graph::NodeId;

/// Identifier ("color", Section 6.4 / Algorithm 3) of one speculative
/// execution: a (branch, mispredicted arm) pair.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Color(pub(crate) u32);

impl Color {
    /// Creates a color from a raw index.
    pub fn from_raw(raw: u32) -> Self {
        Self(raw)
    }

    /// Raw index of this color.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Where speculative and normal abstract states are merged (Figure 6).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum MergeStrategy {
    /// Figure 6c, the paper's recommended strategy: the speculative state is
    /// kept separate through the correct (resume) arm and folded into the
    /// normal state only at the branch's control-flow join point.
    #[default]
    JustInTime,
    /// Figure 6d, the aggressive baseline of Table 6: the speculative state
    /// is folded into the normal state immediately at the rollback point
    /// (the entry of the correct arm).
    MergeAtRollback,
}

/// Parameters of the speculative-execution model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpeculationConfig {
    /// Maximum number of speculatively executed instructions when the
    /// branch condition's operands are guaranteed cache hits (`b_h`,
    /// Section 6.2).  The paper's evaluation uses 20.
    pub depth_on_hit: u32,
    /// Maximum number of speculatively executed instructions when the
    /// branch condition's operands may miss (`b_m`).  The paper uses 200.
    pub depth_on_miss: u32,
    /// Merge strategy for speculative states.
    pub merge_strategy: MergeStrategy,
    /// Whether the dynamic depth-bounding optimisation (Section 6.2) is
    /// enabled.  When disabled, every site always uses `depth_on_miss`.
    pub dynamic_depth_bounding: bool,
}

impl SpeculationConfig {
    /// The paper's evaluation configuration: `b_h = 20`, `b_m = 200`,
    /// just-in-time merging, dynamic bounding enabled.
    pub fn paper_default() -> Self {
        Self {
            depth_on_hit: 20,
            depth_on_miss: 200,
            merge_strategy: MergeStrategy::JustInTime,
            dynamic_depth_bounding: true,
        }
    }

    /// Replaces the merge strategy.
    pub fn with_merge_strategy(mut self, strategy: MergeStrategy) -> Self {
        self.merge_strategy = strategy;
        self
    }

    /// Replaces the speculation windows.
    pub fn with_depths(mut self, depth_on_hit: u32, depth_on_miss: u32) -> Self {
        self.depth_on_hit = depth_on_hit;
        self.depth_on_miss = depth_on_miss;
        self
    }

    /// Enables or disables dynamic depth bounding.
    pub fn with_dynamic_depth_bounding(mut self, enabled: bool) -> Self {
        self.dynamic_depth_bounding = enabled;
        self
    }
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// One speculative execution: the processor mispredicts the branch at
/// `branch_node`, speculatively executes the arm starting at
/// `speculated_entry` for up to `depth_on_miss` instructions, then rolls
/// back and resumes at `resume_entry`.
#[derive(Clone, Debug)]
pub struct SpeculationSite {
    /// The color identifying this speculative execution.
    pub color: Color,
    /// The branch's terminator node (where the condition is evaluated).
    pub branch_node: NodeId,
    /// The basic block that is speculatively (wrongly) executed.
    pub speculated_block: BlockId,
    /// First node of the speculated arm.
    pub speculated_entry: NodeId,
    /// The basic block execution resumes in after the rollback.
    pub resume_block: BlockId,
    /// First node of the resume arm.
    pub resume_entry: NodeId,
    /// Node at which the speculative state is folded back into the normal
    /// state (the branch's join point) — `None` if the arms never re-join.
    pub commit_node: Option<NodeId>,
    /// Memory locations the branch condition depends on, used for dynamic
    /// depth bounding.
    pub condition_refs: Vec<MemRef>,
    /// Instruction distance from `speculated_entry` for every node reachable
    /// within `depth_on_miss` instructions (the speculative region).
    pub spec_distance: HashMap<NodeId, u32>,
    /// Nodes of the resume arm through which the (rolled-back) speculative
    /// state is still propagated separately before being committed.  Only
    /// populated for [`MergeStrategy::JustInTime`].
    pub resume_region: Vec<NodeId>,
}

impl SpeculationSite {
    /// Returns `true` if `node` lies within the speculative region.
    pub fn in_spec_region(&self, node: NodeId) -> bool {
        self.spec_distance.contains_key(&node)
    }

    /// Instruction distance of `node` from the start of speculation, if it
    /// lies within the speculative region.
    pub fn spec_distance_of(&self, node: NodeId) -> Option<u32> {
        self.spec_distance.get(&node).copied()
    }

    /// Returns `true` if `node` lies within the resume region.
    pub fn in_resume_region(&self, node: NodeId) -> bool {
        self.resume_region.contains(&node)
    }

    /// Number of nodes that can be reached speculatively.
    pub fn spec_region_len(&self) -> usize {
        self.spec_distance.len()
    }
}

spec_ir::zero_heap_size!(Color, MergeStrategy, SpeculationConfig);

impl HeapSize for SpeculationSite {
    fn heap_size(&self) -> usize {
        self.condition_refs.heap_size()
            + self.spec_distance.heap_size()
            + self.resume_region.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_evaluation_setup() {
        let c = SpeculationConfig::paper_default();
        assert_eq!(c.depth_on_hit, 20);
        assert_eq!(c.depth_on_miss, 200);
        assert_eq!(c.merge_strategy, MergeStrategy::JustInTime);
        assert!(c.dynamic_depth_bounding);
        assert_eq!(c, SpeculationConfig::default());
    }

    #[test]
    fn builder_style_setters() {
        let c = SpeculationConfig::paper_default()
            .with_depths(0, 50)
            .with_merge_strategy(MergeStrategy::MergeAtRollback)
            .with_dynamic_depth_bounding(false);
        assert_eq!(c.depth_on_hit, 0);
        assert_eq!(c.depth_on_miss, 50);
        assert_eq!(c.merge_strategy, MergeStrategy::MergeAtRollback);
        assert!(!c.dynamic_depth_bounding);
    }

    #[test]
    fn color_display() {
        let c = Color::from_raw(3);
        assert_eq!(c.index(), 3);
        assert_eq!(format!("{c}"), "c3");
        assert_eq!(format!("{c:?}"), "c3");
    }
}
