//! Construction of the virtual control flow graph.

use std::collections::{HashMap, HashSet, VecDeque};

use spec_ir::heap::HeapSize;
use spec_ir::{Cfg, Program};

use crate::inst_graph::{InstGraph, NodeId};
use crate::speculation::{Color, MergeStrategy, SpeculationConfig, SpeculationSite};

/// A program's instruction-level CFG augmented with speculation sites.
///
/// This is the "augmented CFG with virtual control flow" of Section 5.1:
/// the ordinary edges live in the embedded [`InstGraph`]; the virtual edges
/// (speculation seeds, rollbacks and commits) are represented implicitly by
/// the [`SpeculationSite`]s, which the analysis engine in `spec-core`
/// interprets.
#[derive(Clone, Debug)]
pub struct Vcfg {
    graph: InstGraph,
    sites: Vec<SpeculationSite>,
    config: SpeculationConfig,
    /// Colors whose speculative state is committed (folded into the normal
    /// state) when it reaches a given node.
    commits_at: HashMap<NodeId, Vec<Color>>,
    /// Sites keyed by their branch node, for quick lookup during analysis.
    sites_at_branch: HashMap<NodeId, Vec<Color>>,
}

impl Vcfg {
    /// Builds the virtual control flow graph of `program`.
    ///
    /// A speculation site is created for every direction of every
    /// conditional branch whose condition depends on memory; branches whose
    /// conditions are register-only resolve immediately and are not
    /// speculated (Section 5.1).
    pub fn build(program: &Program, config: SpeculationConfig) -> Self {
        let graph = InstGraph::new(program);
        let cfg = Cfg::new(program);
        let mut sites = Vec::new();
        let mut commits_at: HashMap<NodeId, Vec<Color>> = HashMap::new();
        let mut sites_at_branch: HashMap<NodeId, Vec<Color>> = HashMap::new();

        for node in graph.nodes() {
            let Some(cond) = graph.branch_condition(program, node) else {
                continue;
            };
            if !cond.reads_memory() {
                continue;
            }
            let (then_bb, else_bb) = graph
                .branch_targets(program, node)
                .expect("node with a condition is a conditional branch");
            let block = graph.kind(node).block();
            let join_block = cfg.branch_join_point(block);
            let commit_node = join_block.map(|b| graph.first_node_of_block(b));

            for (speculated_block, resume_block) in [(then_bb, else_bb), (else_bb, then_bb)] {
                let color = Color(sites.len() as u32);
                let speculated_entry = graph.first_node_of_block(speculated_block);
                let resume_entry = graph.first_node_of_block(resume_block);
                let spec_distance = graph.distances_within(speculated_entry, config.depth_on_miss);
                let resume_region = match config.merge_strategy {
                    MergeStrategy::JustInTime => reachable_until(&graph, resume_entry, commit_node),
                    MergeStrategy::MergeAtRollback => Vec::new(),
                };
                if config.merge_strategy == MergeStrategy::JustInTime {
                    if let Some(commit) = commit_node {
                        commits_at.entry(commit).or_default().push(color);
                    }
                }
                sites_at_branch.entry(node).or_default().push(color);
                sites.push(SpeculationSite {
                    color,
                    branch_node: node,
                    speculated_block,
                    speculated_entry,
                    resume_block,
                    resume_entry,
                    commit_node,
                    condition_refs: cond.depends_on.clone(),
                    spec_distance,
                    resume_region,
                });
            }
        }
        Self {
            graph,
            sites,
            config,
            commits_at,
            sites_at_branch,
        }
    }

    /// Rebuilds a VCFG from its serialized parts.
    ///
    /// The `commits_at` and `sites_at_branch` indices are derived tables:
    /// [`Vcfg::build`] populates them while pushing sites in color order, so
    /// replaying the same iteration over `sites` reproduces them exactly.
    /// Returns `None` if the site list is inconsistent (colors not dense and
    /// in order, or node ids out of range for `graph`).
    pub fn from_parts(
        graph: InstGraph,
        sites: Vec<SpeculationSite>,
        config: SpeculationConfig,
    ) -> Option<Self> {
        let len = graph.len();
        let mut commits_at: HashMap<NodeId, Vec<Color>> = HashMap::new();
        let mut sites_at_branch: HashMap<NodeId, Vec<Color>> = HashMap::new();
        for (index, site) in sites.iter().enumerate() {
            if site.color.index() != index {
                return None;
            }
            let nodes_in_range = site.branch_node.index() < len
                && site.speculated_entry.index() < len
                && site.resume_entry.index() < len
                && site.commit_node.is_none_or(|n| n.index() < len)
                && site.resume_region.iter().all(|n| n.index() < len)
                && site.spec_distance.keys().all(|n| n.index() < len);
            if !nodes_in_range {
                return None;
            }
            if config.merge_strategy == MergeStrategy::JustInTime {
                if let Some(commit) = site.commit_node {
                    commits_at.entry(commit).or_default().push(site.color);
                }
            }
            sites_at_branch
                .entry(site.branch_node)
                .or_default()
                .push(site.color);
        }
        Some(Self {
            graph,
            sites,
            config,
            commits_at,
            sites_at_branch,
        })
    }

    /// The underlying instruction-level graph.
    pub fn graph(&self) -> &InstGraph {
        &self.graph
    }

    /// The speculation configuration this VCFG was built with.
    pub fn config(&self) -> &SpeculationConfig {
        &self.config
    }

    /// All speculation sites, indexed by color.
    pub fn sites(&self) -> &[SpeculationSite] {
        &self.sites
    }

    /// The site of a particular color.
    pub fn site(&self, color: Color) -> &SpeculationSite {
        &self.sites[color.index()]
    }

    /// Number of colors (speculative executions).
    pub fn num_colors(&self) -> usize {
        self.sites.len()
    }

    /// Number of distinct conditional branches that may speculate.
    pub fn num_speculated_branches(&self) -> usize {
        self.sites_at_branch.len()
    }

    /// Colors seeded at `branch_node` (empty for non-speculating nodes).
    pub fn colors_at_branch(&self, branch_node: NodeId) -> &[Color] {
        self.sites_at_branch
            .get(&branch_node)
            .map_or(&[], Vec::as_slice)
    }

    /// Colors whose speculative state is committed when reaching `node`.
    pub fn commits_at(&self, node: NodeId) -> &[Color] {
        self.commits_at.get(&node).map_or(&[], Vec::as_slice)
    }
}

impl HeapSize for Vcfg {
    fn heap_size(&self) -> usize {
        self.graph.heap_size()
            + self.sites.heap_size()
            + self.commits_at.heap_size()
            + self.sites_at_branch.heap_size()
    }
}

/// Nodes reachable from `start` (inclusive), stopping the traversal at
/// `stop` (which is included but not traversed past).
fn reachable_until(graph: &InstGraph, start: NodeId, stop: Option<NodeId>) -> Vec<NodeId> {
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut queue = VecDeque::from([start]);
    seen.insert(start);
    while let Some(node) = queue.pop_front() {
        if Some(node) == stop {
            continue;
        }
        for &succ in graph.successors(node) {
            if seen.insert(succ) {
                queue.push_back(succ);
            }
        }
    }
    let mut nodes: Vec<NodeId> = seen.into_iter().collect();
    nodes.sort_unstable();
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_ir::builder::ProgramBuilder;
    use spec_ir::{BlockId, BranchSemantics, IndexExpr, MemRef};

    /// The Figure 2 shape: preload, a data-dependent branch over `p`, then a
    /// secret-indexed access.
    fn figure2_like() -> (Program, BlockId, BlockId) {
        let mut b = ProgramBuilder::new("fig2");
        let ph = b.region("ph", 4 * 64, false);
        let l1 = b.region("l1", 64, false);
        let l2 = b.region("l2", 64, false);
        let p = b.region("p", 8, false);
        let k = b.secret_region("k", 8);
        let entry = b.entry_block("entry");
        let then_bb = b.block("then");
        let else_bb = b.block("else");
        let join = b.block("join");
        b.load_sweep(entry, ph, 0, 64, 4);
        b.load(entry, p, IndexExpr::Const(0));
        b.data_branch(
            entry,
            vec![MemRef::at(p, 0)],
            BranchSemantics::InputBit { bit: 0 },
            then_bb,
            else_bb,
        );
        b.load(then_bb, l1, IndexExpr::Const(0));
        b.jump(then_bb, join);
        b.load(else_bb, l2, IndexExpr::Const(0));
        b.jump(else_bb, join);
        b.load(join, k, IndexExpr::Const(0));
        b.load(join, ph, IndexExpr::secret(1));
        b.ret(join);
        (b.finish().unwrap(), then_bb, else_bb)
    }

    #[test]
    fn memory_dependent_branch_creates_two_sites() {
        let (p, then_bb, else_bb) = figure2_like();
        let vcfg = Vcfg::build(&p, SpeculationConfig::paper_default());
        assert_eq!(vcfg.num_colors(), 2);
        assert_eq!(vcfg.num_speculated_branches(), 1);
        let blocks: Vec<_> = vcfg
            .sites()
            .iter()
            .map(|s| (s.speculated_block, s.resume_block))
            .collect();
        assert!(blocks.contains(&(then_bb, else_bb)));
        assert!(blocks.contains(&(else_bb, then_bb)));
    }

    #[test]
    fn register_only_branches_are_not_speculated() {
        let mut b = ProgramBuilder::new("counted");
        let t = b.region("t", 256, false);
        let entry = b.entry_block("entry");
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.jump(entry, header);
        b.loop_branch(header, 4, body, exit);
        b.load(body, t, IndexExpr::loop_indexed(64));
        b.jump(body, header);
        b.ret(exit);
        let p = b.finish().unwrap();
        let vcfg = Vcfg::build(&p, SpeculationConfig::paper_default());
        assert_eq!(vcfg.num_colors(), 0);
        assert_eq!(vcfg.num_speculated_branches(), 0);
    }

    #[test]
    fn commit_node_is_the_branch_join_point_under_jit() {
        let (p, _, _) = figure2_like();
        let vcfg = Vcfg::build(&p, SpeculationConfig::paper_default());
        for site in vcfg.sites() {
            let commit = site.commit_node.expect("diamond has a join point");
            assert!(
                vcfg.commits_at(commit).contains(&site.color),
                "each site commits at its branch's join point"
            );
        }
    }

    #[test]
    fn commit_nodes_collect_all_colors_of_the_branch() {
        let (p, _, _) = figure2_like();
        let vcfg = Vcfg::build(&p, SpeculationConfig::paper_default());
        let site = &vcfg.sites()[0];
        let commit = site.commit_node.expect("diamond has a join point");
        let colors = vcfg.commits_at(commit);
        assert_eq!(colors.len(), 2, "both directions commit at the join point");
    }

    #[test]
    fn merge_at_rollback_has_no_commit_or_resume_regions() {
        let (p, _, _) = figure2_like();
        let config =
            SpeculationConfig::paper_default().with_merge_strategy(MergeStrategy::MergeAtRollback);
        let vcfg = Vcfg::build(&p, config);
        assert_eq!(vcfg.num_colors(), 2);
        for site in vcfg.sites() {
            assert!(site.resume_region.is_empty());
        }
        for node in vcfg.graph().nodes() {
            assert!(vcfg.commits_at(node).is_empty());
        }
    }

    #[test]
    fn spec_region_respects_the_depth_budget() {
        let (p, _, _) = figure2_like();
        let small = SpeculationConfig::paper_default().with_depths(1, 1);
        let vcfg = Vcfg::build(&p, small);
        for site in vcfg.sites() {
            // With a budget of one instruction only the arm's first load (and
            // its free terminator) are reachable.
            assert!(site.spec_region_len() <= 2, "{:?}", site.spec_distance);
            assert!(site.in_spec_region(site.speculated_entry));
            assert_eq!(site.spec_distance_of(site.speculated_entry), Some(1));
        }

        let large = SpeculationConfig::paper_default();
        let vcfg = Vcfg::build(&p, large);
        for site in vcfg.sites() {
            // With the default 200-instruction budget speculation runs past
            // the join point to the end of the program.
            assert!(site.spec_region_len() > 2);
        }
    }

    #[test]
    fn resume_region_stops_at_the_commit_node() {
        let (p, _, _) = figure2_like();
        let vcfg = Vcfg::build(&p, SpeculationConfig::paper_default());
        for site in vcfg.sites() {
            let commit = site.commit_node.expect("join exists");
            assert!(site.in_resume_region(site.resume_entry));
            assert!(site.in_resume_region(commit), "commit node is included");
            // Nothing past the commit node: the node after the commit node
            // (the secret load) must not be in the resume region.
            let after_commit = vcfg.graph().successors(commit)[0];
            assert!(!site.in_resume_region(after_commit));
        }
    }

    #[test]
    fn colors_at_branch_lists_both_directions() {
        let (p, _, _) = figure2_like();
        let vcfg = Vcfg::build(&p, SpeculationConfig::paper_default());
        let site = &vcfg.sites()[0];
        let colors = vcfg.colors_at_branch(site.branch_node);
        assert_eq!(colors.len(), 2);
        let other_node = vcfg.graph().entry();
        assert!(vcfg.colors_at_branch(other_node).is_empty());
    }
}
