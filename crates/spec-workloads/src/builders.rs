//! Shared building blocks for the synthetic workloads.
//!
//! The workloads are assembled from a handful of idioms that dominate the
//! original benchmarks: preloading / streaming over tables, counted
//! processing loops, data-dependent branch "diamonds" whose arms touch
//! different tables, and secret-indexed S-box lookups.

use spec_ir::builder::ProgramBuilder;
use spec_ir::{BlockId, BranchSemantics, IndexExpr, MemRef, RegionId};

/// Emits straight-line loads covering every 64-byte block of `table`.
///
/// This is what a fully-unrolled preload loop (Figure 2 line 3,
/// Figure 10 lines 9–10) looks like to the cache analysis.
pub fn preload_table(b: &mut ProgramBuilder, block: BlockId, table: RegionId, bytes: u64) {
    b.load_sweep(block, table, 0, 64, bytes.div_ceil(64));
}

/// Appends a counted loop at the current position: `entry -> header`,
/// `header` iterates `trips` times over a body that loads
/// `table[loop * stride]` and performs `work` filler instructions, then
/// falls through to a fresh continuation block, which is returned.
pub fn counted_table_walk(
    b: &mut ProgramBuilder,
    from: BlockId,
    table: RegionId,
    trips: u64,
    stride: u64,
    work: usize,
    label: &str,
) -> BlockId {
    let header = b.block(format!("{label}_header"));
    let body = b.block(format!("{label}_body"));
    let cont = b.block(format!("{label}_cont"));
    b.jump(from, header);
    b.loop_branch(header, trips, body, cont);
    b.load(body, table, IndexExpr::loop_indexed(stride));
    b.compute_n(body, work);
    b.jump(body, header);
    cont
}

/// Appends a data-dependent diamond: the condition reads `cond_region[0]`,
/// the then-arm loads `then_refs`, the else-arm loads `else_refs`, and both
/// arms re-join in a fresh continuation block, which is returned.
pub fn data_diamond(
    b: &mut ProgramBuilder,
    from: BlockId,
    cond_region: RegionId,
    semantics: BranchSemantics,
    then_refs: &[(RegionId, u64)],
    else_refs: &[(RegionId, u64)],
    label: &str,
) -> BlockId {
    let then_bb = b.block(format!("{label}_then"));
    let else_bb = b.block(format!("{label}_else"));
    let join = b.block(format!("{label}_join"));
    b.load(from, cond_region, IndexExpr::Const(0));
    b.data_branch(
        from,
        vec![MemRef::at(cond_region, 0)],
        semantics,
        then_bb,
        else_bb,
    );
    for (region, offset) in then_refs {
        b.load(then_bb, *region, IndexExpr::Const(*offset));
    }
    b.compute(then_bb, 1);
    b.jump(then_bb, join);
    for (region, offset) in else_refs {
        b.load(else_bb, *region, IndexExpr::Const(*offset));
    }
    b.compute(else_bb, 1);
    b.jump(else_bb, join);
    join
}

/// Appends `count` back-to-back diamonds; arm `i` touches blocks `2*i` and
/// `2*i + 1` of `scratch` (so each branch brings in fresh lines), the
/// condition alternates between input bits.  Returns the continuation block.
#[allow(clippy::too_many_arguments)]
pub fn branch_ladder(
    b: &mut ProgramBuilder,
    mut from: BlockId,
    cond_region: RegionId,
    scratch: RegionId,
    count: usize,
    label: &str,
) -> BlockId {
    for i in 0..count {
        let then_off = (2 * i as u64) * 64;
        let else_off = (2 * i as u64 + 1) * 64;
        from = data_diamond(
            b,
            from,
            cond_region,
            BranchSemantics::InputBit {
                bit: (i % 8) as u32,
            },
            &[(scratch, then_off)],
            &[(scratch, else_off)],
            &format!("{label}{i}"),
        );
    }
    from
}

/// Appends `rounds` secret-indexed S-box lookups (the cipher inner loop).
pub fn sbox_rounds(
    b: &mut ProgramBuilder,
    block: BlockId,
    sbox: RegionId,
    rounds: usize,
    stride: u64,
) {
    for _ in 0..rounds {
        b.load(block, sbox, IndexExpr::secret(stride));
        b.compute(block, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_ir::Cfg;
    use spec_ir::LoopForest;

    #[test]
    fn counted_table_walk_produces_a_counted_loop() {
        let mut b = ProgramBuilder::new("walk");
        let t = b.region("t", 8 * 64, false);
        let entry = b.entry_block("entry");
        let cont = counted_table_walk(&mut b, entry, t, 8, 64, 2, "walk");
        b.ret(cont);
        let p = b.finish().unwrap();
        let cfg = Cfg::new(&p);
        let loops = LoopForest::find(&p, &cfg);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops.loops()[0].trip_count, Some(8));
    }

    #[test]
    fn data_diamond_creates_one_memory_dependent_branch() {
        let mut b = ProgramBuilder::new("diamond");
        let cond = b.region("cond", 8, false);
        let t = b.region("t", 2 * 64, false);
        let entry = b.entry_block("entry");
        let join = data_diamond(
            &mut b,
            entry,
            cond,
            BranchSemantics::InputBit { bit: 0 },
            &[(t, 0)],
            &[(t, 64)],
            "d",
        );
        b.ret(join);
        let p = b.finish().unwrap();
        assert_eq!(p.branch_count(), 1);
        assert_eq!(p.memory_access_count(), 3);
    }

    #[test]
    fn branch_ladder_chains_diamonds() {
        let mut b = ProgramBuilder::new("ladder");
        let cond = b.region("cond", 8, false);
        let scratch = b.region("scratch", 16 * 64, false);
        let entry = b.entry_block("entry");
        let cont = branch_ladder(&mut b, entry, cond, scratch, 5, "l");
        b.ret(cont);
        let p = b.finish().unwrap();
        assert_eq!(p.branch_count(), 5);
        p.validate().unwrap();
    }

    #[test]
    fn sbox_rounds_emit_secret_accesses() {
        let mut b = ProgramBuilder::new("sbox");
        let sbox = b.region("sbox", 4 * 64, false);
        let entry = b.entry_block("entry");
        sbox_rounds(&mut b, entry, sbox, 3, 64);
        b.ret(entry);
        let p = b.finish().unwrap();
        let secret_loads = p
            .blocks()
            .iter()
            .flat_map(|blk| blk.memory_refs())
            .filter(|m| m.index.is_secret_dependent())
            .count();
        assert_eq!(secret_loads, 3);
    }
}
