//! The side-channel-detection suite (Table 4 of the paper).
//!
//! Each workload is a table-driven cryptographic routine wrapped in the
//! Figure 10 client harness: the client preloads the S-box, streams over an
//! attacker-sized input buffer, runs the routine, and finally performs the
//! cipher's secret-indexed S-box lookups.  The routines fall into two
//! groups, mirroring Table 7:
//!
//! * **speculation-leaky** (`hash`, `encoder`, `chacha20`, `ocb`, `des`):
//!   their data-dependent branches bring *distinct cold lines* into the
//!   cache on each arm, so a mispredicted branch adds lines beyond what any
//!   single architectural path needs and evicts part of the S-box;
//! * **robust** (`aes`, `str2key`, `seed`, `camellia`, `salsa`): they either
//!   re-touch the whole S-box after their branches (aes, camellia, seed) or
//!   their branch arms touch the same lines (str2key, salsa), so wrong-path
//!   execution cannot push the S-box out.

use spec_ir::builder::ProgramBuilder;
use spec_ir::{BranchSemantics, IndexExpr, Program};

use crate::builders::{branch_ladder, counted_table_walk, data_diamond, preload_table};
use crate::motivating::figure10_client;
use crate::{Workload, WorkloadInfo};

/// Names of the ten crypto benchmarks, in the paper's order.
pub const CRYPTO_NAMES: [&str; 10] = [
    "hash", "encoder", "chacha20", "ocb", "aes", "str2key", "des", "seed", "camellia", "salsa",
];

/// Size/shape parameters of one crypto workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CryptoParams {
    /// Bytes of the S-box the client preloads and the cipher indexes with
    /// the secret.
    pub sbox_bytes: u64,
    /// Number of cache lines the routine itself keeps resident along a
    /// single architectural path (used to compute the default buffer size).
    pub resident_lines: u64,
    /// Number of *extra* cold lines a mispredicted branch can pull in.
    pub speculative_extra_lines: u64,
}

impl CryptoParams {
    /// The attacker-controlled buffer size at which the working set of a
    /// single architectural path exactly fills a cache with `cache_lines`
    /// lines — the knife-edge the paper tunes Table 7's buffer column to.
    pub fn fitting_buffer_bytes(&self, cache_lines: u64) -> u64 {
        let sbox_lines = self.sbox_bytes.div_ceil(64);
        cache_lines.saturating_sub(sbox_lines + self.resident_lines + 2) * 64
    }
}

/// Builds one crypto workload (routine + Figure 10 client) by name.
///
/// `buffer_bytes` is the attacker-controlled input-buffer size of the
/// client; `cache_lines` only scales the routine tables.
///
/// # Panics
///
/// Panics if `name` is not one of [`CRYPTO_NAMES`].
pub fn crypto_workload(name: &str, cache_lines: u64, buffer_bytes: u64) -> Workload {
    let (info, params, routine) = crypto_routine(name, cache_lines);
    let program = figure10_client(&routine, params.sbox_bytes, buffer_bytes);
    Workload { info, program }
}

/// Shape parameters of one crypto workload by name.
pub fn crypto_params(name: &str, cache_lines: u64) -> CryptoParams {
    crypto_routine(name, cache_lines).1
}

/// Builds the whole crypto suite, choosing for every workload the buffer
/// size at which the non-speculative working set exactly fits the cache
/// (the same procedure the paper describes for Table 7).
pub fn crypto_suite(cache_lines: u64) -> Vec<(Workload, u64)> {
    CRYPTO_NAMES
        .iter()
        .map(|name| {
            let params = crypto_params(name, cache_lines);
            // `des` carries its own large internal buffer, so the external
            // buffer can be empty and it still leaks (Table 7 lists 0).
            let buffer = if *name == "des" {
                0
            } else {
                params.fitting_buffer_bytes(cache_lines)
            };
            (crypto_workload(name, cache_lines, buffer), buffer)
        })
        .collect()
}

/// Builds the bare routine (without the client) plus its metadata.
fn crypto_routine(name: &str, cache_lines: u64) -> (WorkloadInfo, CryptoParams, Program) {
    match name {
        "hash" => {
            let params = CryptoParams {
                sbox_bytes: 4 * 64,
                resident_lines: 9,
                speculative_extra_lines: 4,
            };
            (
                WorkloadInfo {
                    name: "hash",
                    source: "hpn-ssh",
                    description: "hash function",
                    paper_loc: 320,
                },
                params,
                leaky_routine("hash", 4, 4, cache_lines),
            )
        }
        "encoder" => {
            let params = CryptoParams {
                sbox_bytes: 4 * 64,
                resident_lines: 7,
                speculative_extra_lines: 4,
            };
            (
                WorkloadInfo {
                    name: "encoder",
                    source: "LibTomCrypt",
                    description: "hex encode a string",
                    paper_loc: 134,
                },
                params,
                leaky_routine("encoder", 4, 2, cache_lines),
            )
        }
        "chacha20" => {
            let params = CryptoParams {
                sbox_bytes: 4 * 64,
                resident_lines: 15,
                speculative_extra_lines: 6,
            };
            (
                WorkloadInfo {
                    name: "chacha20",
                    source: "LibTomCrypt",
                    description: "chacha20poly1305 cipher",
                    paper_loc: 776,
                },
                params,
                leaky_routine("chacha20", 6, 8, cache_lines),
            )
        }
        "ocb" => {
            let params = CryptoParams {
                sbox_bytes: 4 * 64,
                resident_lines: 11,
                speculative_extra_lines: 4,
            };
            (
                WorkloadInfo {
                    name: "ocb",
                    source: "LibTomCrypt",
                    description: "OCB implementation",
                    paper_loc: 377,
                },
                params,
                leaky_routine("ocb", 4, 6, cache_lines),
            )
        }
        "des" => {
            let params = CryptoParams {
                sbox_bytes: 8 * 64,
                resident_lines: 40,
                speculative_extra_lines: 8,
            };
            (
                WorkloadInfo {
                    name: "des",
                    source: "openssl",
                    description: "des cipher",
                    paper_loc: 1_051,
                },
                params,
                des_routine(cache_lines),
            )
        }
        "aes" => {
            let params = CryptoParams {
                sbox_bytes: 4 * 64,
                resident_lines: 10,
                speculative_extra_lines: 0,
            };
            (
                WorkloadInfo {
                    name: "aes",
                    source: "LibTomCrypt",
                    description: "AES implementation",
                    paper_loc: 1_838,
                },
                params,
                robust_refreshing_routine("aes", 8, 4 * 64, cache_lines),
            )
        }
        "str2key" => {
            let params = CryptoParams {
                sbox_bytes: 4 * 64,
                resident_lines: 3,
                speculative_extra_lines: 0,
            };
            (
                WorkloadInfo {
                    name: "str2key",
                    source: "openssl",
                    description: "key prepare for des",
                    paper_loc: 385,
                },
                params,
                robust_warm_arm_routine("str2key", 3),
            )
        }
        "seed" => {
            let params = CryptoParams {
                sbox_bytes: 4 * 64,
                resident_lines: 6,
                speculative_extra_lines: 0,
            };
            (
                WorkloadInfo {
                    name: "seed",
                    source: "linux-tegra",
                    description: "seed cipher",
                    paper_loc: 487,
                },
                params,
                robust_refreshing_routine("seed", 4, 4 * 64, cache_lines),
            )
        }
        "camellia" => {
            let params = CryptoParams {
                sbox_bytes: 4 * 64,
                resident_lines: 8,
                speculative_extra_lines: 0,
            };
            (
                WorkloadInfo {
                    name: "camellia",
                    source: "linux-tegra",
                    description: "camellia cipher",
                    paper_loc: 1_324,
                },
                params,
                robust_refreshing_routine("camellia", 6, 4 * 64, cache_lines),
            )
        }
        "salsa" => {
            let params = CryptoParams {
                sbox_bytes: 4 * 64,
                resident_lines: 3,
                speculative_extra_lines: 0,
            };
            (
                WorkloadInfo {
                    name: "salsa",
                    source: "linux-tegra",
                    description: "Salsa20 stream cipher",
                    paper_loc: 279,
                },
                params,
                robust_warm_arm_routine("salsa", 5),
            )
        }
        other => panic!("unknown crypto benchmark `{other}`"),
    }
}

/// A routine whose data-dependent branches bring distinct cold lines into
/// the cache on each arm (padding paths, length checks, per-block special
/// cases): the source of speculative pollution.
fn leaky_routine(name: &str, diamonds: usize, walk_blocks: u64, _cache_lines: u64) -> Program {
    let mut b = ProgramBuilder::new(name.to_string());
    let state = b.region(format!("{name}_state"), walk_blocks.max(1) * 64, false);
    let flags = b.region(format!("{name}_flags"), 8, false);
    let cold = b.region(
        format!("{name}_cold"),
        (diamonds as u64 * 2 + 2) * 64,
        false,
    );
    let entry = b.entry_block("entry");
    let cur = counted_table_walk(&mut b, entry, state, walk_blocks.max(1), 64, 2, "walk");
    let cur = branch_ladder(&mut b, cur, flags, cold, diamonds, "pad");
    let done = b.block("done");
    b.jump(cur, done);
    b.compute_n(done, 4);
    b.ret(done);
    b.finish().expect("leaky routine is well-formed")
}

/// DES carries its own large internal buffer (the paper notes it leaks even
/// with the external buffer at zero), plus parity-check diamonds with cold
/// arms.
fn des_routine(cache_lines: u64) -> Program {
    let mut b = ProgramBuilder::new("des");
    // Leave room for the schedule table, parity flag, one arm of the cold
    // lines, the client's S-box and a one-line margin, so that a single
    // architectural path exactly fits the cache even with an empty external
    // buffer — the mispredicted arm then overflows it.
    let internal_blocks = cache_lines.saturating_sub(26).max(8);
    let internal = b.region("des_internal", internal_blocks * 64, false);
    let parity = b.region("des_parity", 8, false);
    let cold = b.region("des_cold", 20 * 64, false);
    let sched = b.region("des_sched", 8 * 64, false);
    let entry = b.entry_block("entry");
    preload_table(&mut b, entry, internal, internal_blocks * 64);
    let cur = counted_table_walk(&mut b, entry, sched, 8, 64, 1, "sched");
    let cur = branch_ladder(&mut b, cur, parity, cold, 6, "parity");
    let done = b.block("done");
    b.jump(cur, done);
    b.compute_n(done, 4);
    b.ret(done);
    b.finish().expect("des routine is well-formed")
}

/// A routine that ends by re-touching the whole S-box (key-schedule style),
/// so the client's secret lookups always hit regardless of earlier
/// speculation.
fn robust_refreshing_routine(
    name: &str,
    diamonds: usize,
    sbox_bytes: u64,
    _cache_lines: u64,
) -> Program {
    let mut b = ProgramBuilder::new(name.to_string());
    // The routine references the client's S-box by name: `inline_program`
    // unifies regions with equal names.
    let sbox = b.region("sbox", sbox_bytes, false);
    let flags = b.region(format!("{name}_flags"), 8, false);
    let cold = b.region(
        format!("{name}_cold"),
        (diamonds as u64 * 2 + 2) * 64,
        false,
    );
    let key = b.secret_region(format!("{name}_roundkeys"), 64);
    let entry = b.entry_block("entry");
    let cur = branch_ladder(&mut b, entry, flags, cold, diamonds, "round");
    let refresh = b.block("key_schedule");
    b.jump(cur, refresh);
    // The key schedule walks the entire S-box, touching the round keys too.
    preload_table(&mut b, refresh, sbox, sbox_bytes);
    b.load(refresh, key, IndexExpr::Const(0));
    b.ret(refresh);
    b.finish().expect("refreshing routine is well-formed")
}

/// A routine whose branches exist but whose arms touch the *same* warm
/// lines, so misprediction adds nothing to the cache footprint.
fn robust_warm_arm_routine(name: &str, diamonds: usize) -> Program {
    let mut b = ProgramBuilder::new(name.to_string());
    let state = b.region(format!("{name}_state"), 2 * 64, false);
    let flags = b.region(format!("{name}_flags"), 8, false);
    let entry = b.entry_block("entry");
    b.load(entry, state, IndexExpr::Const(0));
    b.load(entry, state, IndexExpr::Const(64));
    let mut cur = entry;
    for i in 0..diamonds {
        cur = data_diamond(
            &mut b,
            cur,
            flags,
            BranchSemantics::InputBit {
                bit: (i % 8) as u32,
            },
            &[(state, 0)],
            &[(state, 64)],
            &format!("mix{i}"),
        );
    }
    let done = b.block("done");
    b.jump(cur, done);
    b.compute_n(done, 2);
    b.ret(done);
    b.finish().expect("warm-arm routine is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_ten_workloads_with_buffers() {
        let suite = crypto_suite(64);
        assert_eq!(suite.len(), 10);
        for (w, buffer) in &suite {
            w.program.validate().unwrap();
            assert!(!w.program.secret_regions().is_empty(), "{}", w.name());
            if w.name() == "des" {
                assert_eq!(*buffer, 0, "des leaks even with an empty buffer");
            }
        }
        let names: Vec<&str> = suite.iter().map(|(w, _)| w.name()).collect();
        assert_eq!(names, CRYPTO_NAMES.to_vec());
    }

    #[test]
    fn clients_contain_secret_indexed_lookups() {
        let w = crypto_workload("hash", 64, 1024);
        let secret_accesses = w
            .program
            .blocks()
            .iter()
            .flat_map(|blk| blk.memory_refs())
            .filter(|m| m.index.is_secret_dependent())
            .count();
        assert_eq!(secret_accesses, 2);
    }

    #[test]
    fn fitting_buffer_shrinks_with_larger_routines() {
        let small = crypto_params("encoder", 64);
        let large = crypto_params("chacha20", 64);
        assert!(small.fitting_buffer_bytes(64) > large.fitting_buffer_bytes(64));
    }

    #[test]
    fn refreshing_routines_reference_the_client_sbox_by_name() {
        let w = crypto_workload("aes", 64, 1024);
        // Only one "sbox" region exists after inlining.
        let sbox_regions = w
            .program
            .regions()
            .iter()
            .filter(|r| r.name == "sbox")
            .count();
        assert_eq!(sbox_regions, 1);
    }

    #[test]
    #[should_panic(expected = "unknown crypto benchmark")]
    fn unknown_name_panics() {
        crypto_workload("nonesuch", 64, 0);
    }
}
