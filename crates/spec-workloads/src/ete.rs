//! The execution-time-estimation suite (Table 3 of the paper).
//!
//! Each function builds a synthetic program whose loop/branch/table
//! structure mirrors the corresponding Mälardalen / MiBench / MediaBench
//! benchmark.  The programs are parameterised by the number of cache lines
//! of the target machine so that their working sets sit near the cache
//! capacity — the regime in which speculative wrong-path loads actually
//! change the analysis verdicts, as in the paper's evaluation.

use spec_ir::builder::ProgramBuilder;
use spec_ir::{BranchSemantics, Program};

use crate::builders::{branch_ladder, counted_table_walk, data_diamond, preload_table};
use crate::{Workload, WorkloadInfo};

/// Names of the ten ETE benchmarks, in the paper's order.
pub const ETE_NAMES: [&str; 10] = [
    "adpcm", "susan", "layer3", "jcmarker", "jdmarker", "jcphuff", "gtk", "g72", "vga", "stc",
];

/// Builds one ETE workload by name, scaled to a machine with `cache_lines`
/// cache lines.
///
/// # Panics
///
/// Panics if `name` is not one of [`ETE_NAMES`].
pub fn ete_workload(name: &str, cache_lines: u64) -> Workload {
    let lines = cache_lines.max(16);
    let (info, program) = match name {
        "adpcm" => (
            WorkloadInfo {
                name: "adpcm",
                source: "WCET@mdh",
                description: "motor control",
                paper_loc: 910,
            },
            adpcm(lines),
        ),
        "susan" => (
            WorkloadInfo {
                name: "susan",
                source: "MiBench",
                description: "image process algorithm",
                paper_loc: 2_140,
            },
            susan(lines),
        ),
        "layer3" => (
            WorkloadInfo {
                name: "layer3",
                source: "MiBench",
                description: "mp3 audio lib",
                paper_loc: 2_233,
            },
            layer3(lines),
        ),
        "jcmarker" => (
            WorkloadInfo {
                name: "jcmarker",
                source: "MiBench",
                description: "jpeg compose algorithm",
                paper_loc: 1_444,
            },
            jcmarker(lines),
        ),
        "jdmarker" => (
            WorkloadInfo {
                name: "jdmarker",
                source: "MiBench",
                description: "jpeg decompose algorithm",
                paper_loc: 2_068,
            },
            jdmarker(lines),
        ),
        "jcphuff" => (
            WorkloadInfo {
                name: "jcphuff",
                source: "MiBench",
                description: "jpeg Huffman entropy encoding routines",
                paper_loc: 694,
            },
            jcphuff(lines),
        ),
        "gtk" => (
            WorkloadInfo {
                name: "gtk",
                source: "MiBench",
                description: "GTK plotting routines",
                paper_loc: 949,
            },
            gtk(lines),
        ),
        "g72" => (
            WorkloadInfo {
                name: "g72",
                source: "mediaBench",
                description: "routines for G.721 and G.723 conversions",
                paper_loc: 608,
            },
            g72(lines),
        ),
        "vga" => (
            WorkloadInfo {
                name: "vga",
                source: "mediaBench",
                description: "driver for Borland Graphics Interface",
                paper_loc: 386,
            },
            vga(lines),
        ),
        "stc" => (
            WorkloadInfo {
                name: "stc",
                source: "mediaBench",
                description: "Epson Stylus-Color printer driver",
                paper_loc: 492,
            },
            stc(lines),
        ),
        other => panic!("unknown ETE benchmark `{other}`"),
    };
    Workload { info, program }
}

/// Adds a one-shot streaming region sized so that the workload's
/// single-path working set reaches `lines - margin` cache lines: the regime
/// where a handful of wrong-path lines is enough to evict data that is
/// still live, as in the paper's evaluation machine.
fn fill_to_capacity(
    b: &mut ProgramBuilder,
    block: spec_ir::BlockId,
    lines: u64,
    one_path_lines: u64,
    margin: u64,
) {
    let fill_blocks = lines.saturating_sub(one_path_lines + margin);
    if fill_blocks == 0 {
        return;
    }
    let fill = b.region("heap_fill", fill_blocks * 64, false);
    preload_table(b, block, fill, fill_blocks * 64);
}

/// Builds the whole ETE suite scaled to `cache_lines`.
pub fn ete_suite(cache_lines: u64) -> Vec<Workload> {
    ETE_NAMES
        .iter()
        .map(|name| ete_workload(name, cache_lines))
        .collect()
}

/// adpcm: a sample-processing loop over a coefficient table, a quantisation
/// diamond per sample, and a final sweep that re-reads the coefficients.
fn adpcm(lines: u64) -> Program {
    let mut b = ProgramBuilder::new("adpcm");
    let coeffs_blocks = lines / 2;
    let coeffs = b.region("coeffs", coeffs_blocks * 64, false);
    let samples = b.region("samples", (lines / 4) * 64, false);
    let scratch = b.region("scratch", 32 * 64, false);
    let state = b.region("state", 8, false);
    let entry = b.entry_block("entry");
    preload_table(&mut b, entry, coeffs, coeffs_blocks * 64);
    fill_to_capacity(&mut b, entry, lines, coeffs_blocks + lines / 4 + 8 + 1, 2);
    let cur = counted_table_walk(&mut b, entry, samples, lines / 4, 64, 2, "samples");
    let cur = branch_ladder(&mut b, cur, state, scratch, 8, "quant");
    // Re-read the first coefficients: hits non-speculatively, may miss once
    // the wrong-path scratch lines have evicted them.
    let done = b.block("reread");
    b.jump(cur, done);
    b.load_sweep(done, coeffs, 0, 64, 8);
    b.ret(done);
    b.finish().expect("adpcm is well-formed")
}

/// susan: image smoothing — a 2-D-style double loop over the image plus a
/// brightness-threshold diamond, then corner re-reads.
fn susan(lines: u64) -> Program {
    let mut b = ProgramBuilder::new("susan");
    let image_blocks = lines / 2 + lines / 4;
    let image = b.region("image", image_blocks * 64, false);
    let mask = b.region("mask", 16 * 64, false);
    let threshold = b.region("threshold", 8, false);
    let scratch = b.region("scratch", 24 * 64, false);
    let entry = b.entry_block("entry");
    preload_table(&mut b, entry, image, image_blocks * 64);
    fill_to_capacity(&mut b, entry, lines, image_blocks + 16 + 3 + 6 + 1, 2);
    let cur = counted_table_walk(&mut b, entry, mask, 16, 64, 3, "mask");
    let cur = data_diamond(
        &mut b,
        cur,
        threshold,
        BranchSemantics::InputBit { bit: 0 },
        &[(scratch, 0), (scratch, 64), (scratch, 128)],
        &[(scratch, 192), (scratch, 256), (scratch, 320)],
        "bright",
    );
    let cur = branch_ladder(&mut b, cur, threshold, scratch, 6, "corner");
    let done = b.block("reread");
    b.jump(cur, done);
    b.load_sweep(done, image, 0, 64, 12);
    b.ret(done);
    b.finish().expect("susan is well-formed")
}

/// layer3: mp3 decoding — subband loops over two tables and a long ladder of
/// window-switching decisions.
fn layer3(lines: u64) -> Program {
    let mut b = ProgramBuilder::new("layer3");
    let subband = b.region("subband", (lines / 2) * 64, false);
    let window = b.region("window", (lines / 8) * 64, false);
    let flags = b.region("flags", 8, false);
    let scratch = b.region("scratch", 48 * 64, false);
    let entry = b.entry_block("entry");
    preload_table(&mut b, entry, subband, (lines / 2) * 64);
    fill_to_capacity(&mut b, entry, lines, lines / 2 + lines / 8 + 16 + 1, 2);
    let cur = counted_table_walk(&mut b, entry, window, lines / 8, 64, 2, "window");
    let cur = branch_ladder(&mut b, cur, flags, scratch, 16, "win_switch");
    let done = b.block("granule");
    b.jump(cur, done);
    b.load_sweep(done, subband, 0, 64, 16);
    b.ret(done);
    b.finish().expect("layer3 is well-formed")
}

/// jcmarker: JPEG marker writing — small tables, a handful of header
/// decision diamonds.
fn jcmarker(lines: u64) -> Program {
    let mut b = ProgramBuilder::new("jcmarker");
    let qtable = b.region("qtable", (lines / 2) * 64, false);
    let header = b.region("header", 8, false);
    let scratch = b.region("scratch", 16 * 64, false);
    let entry = b.entry_block("entry");
    preload_table(&mut b, entry, qtable, (lines / 2) * 64);
    fill_to_capacity(&mut b, entry, lines, lines / 2 + 5 + 1, 2);
    let cur = branch_ladder(&mut b, entry, header, scratch, 5, "marker");
    let done = b.block("emit");
    b.jump(cur, done);
    b.load_sweep(done, qtable, 0, 64, 10);
    b.ret(done);
    b.finish().expect("jcmarker is well-formed")
}

/// jdmarker: JPEG marker reading — like jcmarker but with more decision
/// points (each marker type) and a scan loop.
fn jdmarker(lines: u64) -> Program {
    let mut b = ProgramBuilder::new("jdmarker");
    let qtable = b.region("qtable", (lines / 2) * 64, false);
    let scan = b.region("scan", (lines / 8) * 64, false);
    let marker = b.region("marker", 8, false);
    let scratch = b.region("scratch", 48 * 64, false);
    let entry = b.entry_block("entry");
    preload_table(&mut b, entry, qtable, (lines / 2) * 64);
    fill_to_capacity(&mut b, entry, lines, lines / 2 + lines / 8 + 20 + 1, 2);
    let cur = counted_table_walk(&mut b, entry, scan, lines / 8, 64, 1, "scan");
    let cur = branch_ladder(&mut b, cur, marker, scratch, 20, "marker");
    let done = b.block("emit");
    b.jump(cur, done);
    b.load_sweep(done, qtable, 0, 64, 20);
    b.ret(done);
    b.finish().expect("jdmarker is well-formed")
}

/// jcphuff: progressive Huffman encoding — a couple of code-length diamonds
/// over small tables (small program, few extra misses).
fn jcphuff(lines: u64) -> Program {
    let mut b = ProgramBuilder::new("jcphuff");
    let codes = b.region("codes", (lines / 4) * 64, false);
    let bits = b.region("bits", 8, false);
    let scratch = b.region("scratch", 8 * 64, false);
    let entry = b.entry_block("entry");
    preload_table(&mut b, entry, codes, (lines / 4) * 64);
    let cur = branch_ladder(&mut b, entry, bits, scratch, 3, "code");
    let done = b.block("flush");
    b.jump(cur, done);
    b.load_sweep(done, codes, 0, 64, 4);
    b.ret(done);
    b.finish().expect("jcphuff is well-formed")
}

/// gtk: plotting routines over a large framebuffer-like region (the paper
/// notes its large data size) with clipping decisions.
fn gtk(lines: u64) -> Program {
    let mut b = ProgramBuilder::new("gtk");
    let framebuffer = b.region("framebuffer", (lines - 8) * 64, false);
    let clip = b.region("clip", 8, false);
    let scratch = b.region("scratch", 16 * 64, false);
    let entry = b.entry_block("entry");
    preload_table(&mut b, entry, framebuffer, (lines - 8) * 64);
    let cur = branch_ladder(&mut b, entry, clip, scratch, 6, "clip");
    let done = b.block("blit");
    b.jump(cur, done);
    b.load_sweep(done, framebuffer, 0, 64, 24);
    b.ret(done);
    b.finish().expect("gtk is well-formed")
}

/// g72: G.721/G.723 conversion — a predictor-update loop plus sign/magnitude
/// diamonds over small state.
fn g72(lines: u64) -> Program {
    let mut b = ProgramBuilder::new("g72");
    let state = b.region("state_table", (lines / 4) * 64, false);
    let sign = b.region("sign", 8, false);
    let scratch = b.region("scratch", 8 * 64, false);
    let entry = b.entry_block("entry");
    preload_table(&mut b, entry, state, (lines / 4) * 64);
    fill_to_capacity(&mut b, entry, lines, lines / 4 + 4 + 1, 2);
    let cur = counted_table_walk(&mut b, entry, state, 6, 64, 2, "predictor");
    let cur = branch_ladder(&mut b, cur, sign, scratch, 4, "sign");
    let done = b.block("update");
    b.jump(cur, done);
    b.load_sweep(done, state, 0, 64, 6);
    b.ret(done);
    b.finish().expect("g72 is well-formed")
}

/// vga: graphics driver with a tiny working set and branches whose arms
/// touch the *same* lines — the case where speculation changes nothing
/// (the paper reports identical miss counts for vga).
fn vga(lines: u64) -> Program {
    let _ = lines;
    let mut b = ProgramBuilder::new("vga");
    let palette = b.region("palette", 4 * 64, false);
    let mode = b.region("mode", 8, false);
    let entry = b.entry_block("entry");
    preload_table(&mut b, entry, palette, 4 * 64);
    // Both arms of every mode check touch the already-loaded palette.
    let cur = data_diamond(
        &mut b,
        entry,
        mode,
        BranchSemantics::InputBit { bit: 0 },
        &[(palette, 0)],
        &[(palette, 64)],
        "mode0",
    );
    let cur = data_diamond(
        &mut b,
        cur,
        mode,
        BranchSemantics::InputBit { bit: 1 },
        &[(palette, 128)],
        &[(palette, 192)],
        "mode1",
    );
    let done = b.block("draw");
    b.jump(cur, done);
    b.load_sweep(done, palette, 0, 64, 4);
    b.ret(done);
    b.finish().expect("vga is well-formed")
}

/// stc: printer driver — a dithering loop over a line buffer plus colour
/// plane decisions with cold per-plane tables.
fn stc(lines: u64) -> Program {
    let mut b = ProgramBuilder::new("stc");
    let line_buf = b.region("line_buf", (lines / 2) * 64, false);
    let plane = b.region("plane", 8, false);
    let dither = b.region("dither", 24 * 64, false);
    let entry = b.entry_block("entry");
    preload_table(&mut b, entry, line_buf, (lines / 2) * 64);
    fill_to_capacity(&mut b, entry, lines, lines / 2 + 8 + 1, 2);
    let cur = counted_table_walk(&mut b, entry, line_buf, 8, 64, 1, "dither_loop");
    let cur = branch_ladder(&mut b, cur, plane, dither, 8, "plane");
    let done = b.block("emit");
    b.jump(cur, done);
    b.load_sweep(done, line_buf, 0, 64, 12);
    b.ret(done);
    b.finish().expect("stc is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_ten_valid_workloads() {
        let suite = ete_suite(64);
        assert_eq!(suite.len(), 10);
        for w in &suite {
            w.program.validate().unwrap();
            assert!(w.program.branch_count() >= 1, "{} has branches", w.name());
            assert!(w.info.paper_loc > 0);
        }
        // Names are unique and ordered like the paper.
        let names: Vec<&str> = suite.iter().map(Workload::name).collect();
        assert_eq!(names, ETE_NAMES.to_vec());
    }

    #[test]
    fn workloads_have_memory_dependent_branches_except_where_intended() {
        let w = ete_workload("adpcm", 64);
        let memory_branches = w
            .program
            .blocks()
            .iter()
            .filter_map(|blk| blk.term.condition())
            .filter(|c| c.reads_memory())
            .count();
        assert!(memory_branches >= 8);
    }

    #[test]
    #[should_panic(expected = "unknown ETE benchmark")]
    fn unknown_name_panics() {
        ete_workload("nonesuch", 64);
    }

    #[test]
    fn scaling_changes_program_size() {
        let small = ete_workload("gtk", 32);
        let large = ete_workload("gtk", 128);
        assert!(large.program.memory_access_count() > small.program.memory_access_count());
    }
}
