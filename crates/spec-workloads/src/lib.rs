//! # spec-workloads
//!
//! Synthetic benchmark programs standing in for the paper's evaluation
//! suites (Section 7.1):
//!
//! * [`ete`] — ten real-time / embedded style programs mirroring the
//!   Mälardalen and MiBench benchmarks of Table 3 (loops over data tables,
//!   data-dependent branches whose arms touch different buffers).
//! * [`crypto`] — ten table-driven cryptographic routines mirroring Table 4
//!   (an S-box preloaded by the Figure 10 client, secret-indexed lookups,
//!   data-dependent branches), each wrapped in the attacker-controlled
//!   client harness.
//! * [`motivating`] — the running examples of the paper: Figure 2
//!   (execution-time / side-channel motivation), Figure 10 (client code),
//!   Figure 11 (the loop that needs shadow variables).
//! * [`quantl`] — the Figure 8 DSP routine (`quantl` from the G.722
//!   codec) used for the Table 1 / Table 2 walkthrough.
//!
//! Every workload carries a [`WorkloadInfo`] describing which benchmark it
//! models and the line count the paper reports for the original C code, so
//! that the bench harness can regenerate the statistics tables.

pub mod builders;
pub mod crypto;
pub mod ete;
pub mod motivating;
pub mod quantl;

use spec_ir::Program;

/// Metadata about a synthetic workload and the benchmark it models.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkloadInfo {
    /// Benchmark name as used in the paper's tables.
    pub name: &'static str,
    /// Origin of the original benchmark (e.g. "MiBench", "LibTomCrypt").
    pub source: &'static str,
    /// Short description from Table 3 / Table 4.
    pub description: &'static str,
    /// Lines of C code the paper reports for the original program.
    pub paper_loc: usize,
}

/// A synthetic workload: its metadata plus the generated program.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Metadata about the modelled benchmark.
    pub info: WorkloadInfo,
    /// The generated IR program.
    pub program: Program,
}

impl Workload {
    /// Convenience accessor for the program name.
    pub fn name(&self) -> &str {
        self.info.name
    }
}

pub use crypto::{crypto_suite, crypto_workload, CryptoParams};
pub use ete::{ete_suite, ete_workload};
pub use motivating::{figure10_client, figure11_program, figure2_program};
pub use quantl::quantl_program;
