//! The paper's running examples: Figure 2, Figure 10 and Figure 11.

use spec_ir::builder::ProgramBuilder;
use spec_ir::{BranchSemantics, IndexExpr, MemRef, Program};

/// The Figure 2 program: a placeholder array `ph` filling all but two cache
/// lines, a branch over the uncached `p`, whose arms load `l1` or `l2`, and
/// the final secret-indexed access `ph[k]`.
///
/// With `cache_lines = 512` this is exactly the paper's example: the
/// non-speculative execution has 512 misses plus one hit, the mispredicted
/// speculative execution has 513 observable misses plus one squashed miss.
pub fn figure2_program(cache_lines: u64) -> Program {
    assert!(
        cache_lines >= 4,
        "the example needs at least four cache lines"
    );
    let ph_lines = cache_lines - 2;
    let mut b = ProgramBuilder::new("figure2");
    let ph = b.region("ph", ph_lines * 64, false);
    let l1 = b.region("l1", 64, false);
    let l2 = b.region("l2", 64, false);
    let p = b.region("p", 8, false);
    let k = b.secret_region("k", 8);
    let _ = k; // k is a register in the paper; it only taints the index below.

    let entry = b.entry_block("entry");
    let preload_h = b.block("preload_header");
    let preload_b = b.block("preload_body");
    let branch_bb = b.block("branch");
    let then_bb = b.block("then");
    let else_bb = b.block("else");
    let done = b.block("done");

    b.jump(entry, preload_h);
    b.loop_branch(preload_h, ph_lines, preload_b, branch_bb);
    b.load(preload_b, ph, IndexExpr::loop_indexed(64));
    b.jump(preload_b, preload_h);
    b.load(branch_bb, p, IndexExpr::Const(0));
    b.data_branch(
        branch_bb,
        vec![MemRef::at(p, 0)],
        BranchSemantics::InputBit { bit: 0 },
        then_bb,
        else_bb,
    );
    b.load(then_bb, l1, IndexExpr::Const(0));
    b.jump(then_bb, done);
    b.load(else_bb, l2, IndexExpr::Const(0));
    b.jump(else_bb, done);
    b.load(done, ph, IndexExpr::secret(64));
    b.ret(done);
    b.finish().expect("figure 2 program is well-formed")
}

/// The Figure 10 client program wrapped around an arbitrary "library"
/// routine: preload the S-box, stream over an attacker-sized input buffer,
/// run the routine, then perform the cipher's secret-indexed S-box lookups.
///
/// `buffer_bytes` is the attacker-controlled `BUF_SIZE`; sweeping it from 0
/// to the cache capacity is how Table 7's rows are produced.
pub fn figure10_client(routine: &Program, sbox_bytes: u64, buffer_bytes: u64) -> Program {
    // The client wraps the routine; reports use the routine's benchmark name.
    let mut b = ProgramBuilder::new(routine.name().to_string());
    let sbox = b.region("sbox", sbox_bytes.max(64), false);
    let in_buf = b.region("inBuf", buffer_bytes.max(64), false);
    let key = b.secret_region("key", 32);
    let _ = key;

    let entry = b.entry_block("entry");
    let after_routine = b.block("after_routine");
    let encrypt = b.block("encrypt");

    // Preload the S-box (lines 9-10 of Figure 10).
    b.load_sweep(entry, sbox, 0, 64, sbox_bytes.max(64).div_ceil(64));
    // Stream over the attacker-controlled input buffer (lines 11-12).
    if buffer_bytes > 0 {
        b.load_sweep(entry, in_buf, 0, 64, buffer_bytes.div_ceil(64));
    }
    // Call the library routine (line 13): inline its blocks.
    let routine_entry = b.inline_program(routine, after_routine);
    b.jump(entry, routine_entry);
    // Finally, the cipher's secret-indexed table lookups (line 14).
    b.jump(after_routine, encrypt);
    b.load(encrypt, sbox, IndexExpr::secret(64));
    b.load(encrypt, sbox, IndexExpr::secret(64));
    b.ret(encrypt);
    b.finish().expect("client program is well-formed")
}

/// The Figure 11 loop: `a` is loaded once, then a loop repeatedly takes one
/// of two arms touching `b` or `c`; without the shadow-variable refinement
/// the analysis spuriously evicts `a`.
pub fn figure11_program(iterations: u64) -> Program {
    let mut b = ProgramBuilder::new("figure11");
    let a = b.region("a", 64, false);
    let bc = b.region("bc", 2 * 64, false);
    let _sel = b.region("sel", 8, false);

    let entry = b.entry_block("entry");
    let header = b.block("header");
    let then_bb = b.block("then");
    let else_bb = b.block("else");
    let latch = b.block("latch");
    let exit = b.block("exit");

    b.load(entry, a, IndexExpr::Const(0));
    b.jump(entry, header);
    b.loop_branch(header, iterations, then_bb, exit);
    // The inner branch is register-only in Figure 11 (its point is the join,
    // not speculation).
    b.branch(
        then_bb,
        spec_ir::Condition::register_only(BranchSemantics::InputBit { bit: 0 }),
        latch,
        else_bb,
    );
    b.load(else_bb, bc, IndexExpr::Const(64)); // c
    b.jump(else_bb, latch);
    b.load(latch, bc, IndexExpr::Const(0)); // b
    b.jump(latch, header);
    b.load(exit, a, IndexExpr::Const(0));
    b.ret(exit);
    b.finish().expect("figure 11 program is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_has_the_expected_shape() {
        let p = figure2_program(512);
        assert_eq!(p.branch_count(), 2, "preload loop + the speculated branch");
        assert_eq!(p.secret_regions().len(), 1);
        // 510-line placeholder + l1 + l2 + p accesses + final secret access.
        assert_eq!(p.memory_access_count(), 1 + 1 + 1 + 1 + 1);
        p.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "at least four cache lines")]
    fn figure2_rejects_tiny_caches() {
        figure2_program(2);
    }

    #[test]
    fn figure10_client_inlines_the_routine_and_adds_secret_lookups() {
        let mut rb = ProgramBuilder::new("routine");
        let t = rb.region("t", 128, false);
        let e = rb.entry_block("entry");
        rb.load(e, t, IndexExpr::Const(0));
        rb.ret(e);
        let routine = rb.finish().unwrap();

        let client = figure10_client(&routine, 256, 1024);
        assert!(client.region_by_name("sbox").is_some());
        assert!(client.region_by_name("inBuf").is_some());
        assert!(
            client.region_by_name("t").is_some(),
            "routine regions inlined"
        );
        let secret_accesses = client
            .blocks()
            .iter()
            .flat_map(|blk| blk.memory_refs())
            .filter(|m| m.index.is_secret_dependent())
            .count();
        assert_eq!(secret_accesses, 2);
        client.validate().unwrap();
    }

    #[test]
    fn figure10_client_with_empty_buffer_skips_the_buffer_sweep() {
        let mut rb = ProgramBuilder::new("routine");
        let e = rb.entry_block("entry");
        rb.ret(e);
        let routine = rb.finish().unwrap();
        let client = figure10_client(&routine, 256, 0);
        // Only the sbox preload (4 blocks) and the two secret lookups.
        assert_eq!(client.memory_access_count(), 4 + 2);
    }

    #[test]
    fn figure11_is_a_counted_loop_with_an_inner_diamond() {
        let p = figure11_program(3);
        assert_eq!(p.branch_count(), 2);
        p.validate().unwrap();
    }
}
