//! The Figure 8 running example: the `quantl` routine from a G.722-style
//! DSP codec (Mälardalen `adpcm`), used in the paper for the Table 1 /
//! Table 2 fixed-point walkthrough.

use spec_ir::builder::ProgramBuilder;
use spec_ir::{BranchSemantics, IndexExpr, MemRef, Program};

/// Builds the `quantl` routine of Figure 8.
///
/// Memory regions mirror the C code: the two 31-entry quantisation tables
/// `quant26bt_pos` / `quant26bt_neg`, the 30-entry `decis_levl` table, and
/// the scalar locals `wd`, `el`, `detl`, `decis`, `mil`, `ril` that the
/// paper's cache-state tables track.  The decision loop searches
/// `decis_levl` with a data-dependent exit (`wd <= decis`), and the final
/// sign test selects one of the two quantisation tables — the branch the
/// speculative analysis must model.
pub fn quantl_program() -> Program {
    let mut b = ProgramBuilder::new("quantl");
    // 31 ints = 124 bytes each; they span two cache lines at 64 B/line.
    let quant_pos = b.region("quant26bt_pos", 124, false);
    let quant_neg = b.region("quant26bt_neg", 124, false);
    let decis_levl = b.region("decis_levl", 120, false);
    let wd = b.region("wd", 8, false);
    let el = b.region("el", 8, false);
    let detl = b.region("detl", 8, false);
    let decis = b.region("decis", 8, false);
    let mil = b.region("mil", 8, false);
    let ril = b.region("ril", 8, false);

    let bb1 = b.entry_block("bb1");
    let bb2 = b.block("bb2");
    let bb3 = b.block("bb3");
    let bb4 = b.block("bb4");
    let bb5 = b.block("bb5");
    let bb6 = b.block("bb6");
    let bb7 = b.block("bb7");
    let bb8 = b.block("bb8");

    // bb1: wd = my_abs(el)
    b.load(bb1, el, IndexExpr::Const(0));
    b.store(bb1, wd, IndexExpr::Const(0));
    b.jump(bb1, bb2);

    // bb2: loop header (mil = 0; mil < 30; mil++) — the exit condition also
    // depends on `wd <= decis`, so the header reads memory.
    b.load(bb2, mil, IndexExpr::Const(0));
    b.data_branch(
        bb2,
        vec![MemRef::at(wd, 0), MemRef::at(decis, 0)],
        BranchSemantics::Loop { trip_count: 3 },
        bb3,
        bb5,
    );

    // bb3: decis = (decis_levl[mil] * detl) >> 15
    b.load(bb3, decis_levl, IndexExpr::loop_indexed(4));
    b.load(bb3, detl, IndexExpr::Const(0));
    b.compute(bb3, 2);
    b.store(bb3, decis, IndexExpr::Const(0));
    b.load(bb3, wd, IndexExpr::Const(0));
    b.jump(bb3, bb4);

    // bb4: mil++
    b.load(bb4, mil, IndexExpr::Const(0));
    b.store(bb4, mil, IndexExpr::Const(0));
    b.jump(bb4, bb2);

    // bb5: if (el >= 0)
    b.load(bb5, el, IndexExpr::Const(0));
    b.data_branch(
        bb5,
        vec![MemRef::at(el, 0)],
        BranchSemantics::InputBit { bit: 0 },
        bb6,
        bb7,
    );

    // bb6: ril = quant26bt_pos[mil]
    b.load(bb6, mil, IndexExpr::Const(0));
    b.load(bb6, quant_pos, IndexExpr::input(4));
    b.store(bb6, ril, IndexExpr::Const(0));
    b.jump(bb6, bb8);

    // bb7: ril = quant26bt_neg[mil]
    b.load(bb7, mil, IndexExpr::Const(0));
    b.load(bb7, quant_neg, IndexExpr::input(4));
    b.store(bb7, ril, IndexExpr::Const(0));
    b.jump(bb7, bb8);

    // bb8: return ril
    b.load(bb8, ril, IndexExpr::Const(0));
    b.ret(bb8);

    b.finish().expect("quantl program is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantl_matches_the_figure_9_structure() {
        let p = quantl_program();
        assert_eq!(p.blocks().len(), 8);
        assert_eq!(p.branch_count(), 2);
        assert_eq!(p.regions().len(), 9);
        p.validate().unwrap();
    }

    #[test]
    fn the_two_quant_tables_are_only_touched_in_the_branch_arms() {
        let p = quantl_program();
        let pos = p.region_by_name("quant26bt_pos").unwrap();
        let neg = p.region_by_name("quant26bt_neg").unwrap();
        let touching_blocks = |region| {
            p.blocks()
                .iter()
                .filter(|blk| blk.memory_refs().any(|m| m.region == region))
                .count()
        };
        assert_eq!(touching_blocks(pos), 1);
        assert_eq!(touching_blocks(neg), 1);
    }
}
