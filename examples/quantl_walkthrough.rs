//! Walks through the paper's running example (Figure 8/9, Tables 1 and 2):
//! the `quantl` DSP routine, analysed without and with speculation.
//!
//! Run with `cargo run --example quantl_walkthrough`.

use spec_core::{AnalysisOptions, Analyzer};
use spec_workloads::quantl_program;

fn main() {
    let program = quantl_program();
    println!("{program}");

    let cache = spec_cache::CacheConfig::fully_associative(16, 64);

    // One prepared session serves both tables (and prints a unified,
    // labelled summary at the end).
    let prepared = Analyzer::new().prepare(&program);
    let suite = prepared.run_suite(&[
        (
            "non-speculative (Table 1)",
            AnalysisOptions::builder()
                .baseline()
                .cache(cache)
                .build()
                .unwrap(),
        ),
        (
            "speculative (Table 2)",
            AnalysisOptions::builder().cache(cache).build().unwrap(),
        ),
    ]);
    for run in &suite.runs {
        let (label, result) = (&run.label, &run.result);
        println!("== {label} ==");
        println!(
            "  accesses: {}   possible misses: {}   squashed misses: {}   iterations: {}",
            result.access_count(),
            result.miss_count(),
            result.speculative_miss_count(),
            result.iterations()
        );
        for access in result.accesses() {
            let cached = result.fully_cached_regions_at(access.node);
            println!(
                "  {:>4}  {:<22} {:<9} fully cached: {}",
                result.program.block(access.block).label(),
                format!("{}[{}]", access.region_name, access.inst_index),
                if access.observable_hit {
                    "hit"
                } else {
                    "may-miss"
                },
                if cached.is_empty() {
                    "-".to_string()
                } else {
                    cached.join(", ")
                }
            );
        }
        println!();
    }
    print!("{}", suite.report());
    println!();
    println!(
        "Under speculation the quantisation tables of *both* branch arms are brought into the \
         cache (paper, Table 2), which ages every other variable and can turn later hits into \
         misses — the danger for execution-time estimation."
    );
}
