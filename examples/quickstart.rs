//! Quickstart: build a small program, analyse it with and without
//! speculative execution modelled, and print what changes.
//!
//! Run with `cargo run --example quickstart`.

use spec_cache::CacheConfig;
use spec_core::{AnalysisOptions, Analyzer};
use spec_ir::builder::ProgramBuilder;
use spec_ir::{BranchSemantics, IndexExpr, MemRef};

fn main() {
    // A miniature Spectre-like victim: a lookup table that fits the cache,
    // a branch whose condition must be fetched from memory, and a final
    // secret-indexed access to the table.
    let mut b = ProgramBuilder::new("quickstart");
    let table = b.region("table", 6 * 64, false);
    let scratch_a = b.region("scratch_a", 64, false);
    let scratch_b = b.region("scratch_b", 64, false);
    let flag = b.region("flag", 8, false);
    let entry = b.entry_block("entry");
    let then_bb = b.block("then");
    let else_bb = b.block("else");
    let done = b.block("done");

    b.load_sweep(entry, table, 0, 64, 6); // warm the table
    b.load(entry, flag, IndexExpr::Const(0));
    b.data_branch(
        entry,
        vec![MemRef::at(flag, 0)],
        BranchSemantics::InputBit { bit: 0 },
        then_bb,
        else_bb,
    );
    b.load(then_bb, scratch_a, IndexExpr::Const(0));
    b.jump(then_bb, done);
    b.load(else_bb, scratch_b, IndexExpr::Const(0));
    b.jump(else_bb, done);
    b.load(done, table, IndexExpr::secret(64)); // table[secret]
    b.ret(done);
    let program = b.finish().expect("program is well-formed");

    println!("{program}");

    // An 8-line cache: the table, the flag and ONE scratch line fit exactly.
    let cache = CacheConfig::fully_associative(8, 64);

    // Prepare once; the unrolled program, address map and VCFG are shared by
    // both runs (and would be by any further configuration).
    let prepared = Analyzer::new().prepare(&program);
    let base = prepared.run(
        &AnalysisOptions::builder()
            .baseline()
            .cache(cache)
            .build()
            .unwrap(),
    );
    let spec = prepared.run(&AnalysisOptions::builder().cache(cache).build().unwrap());

    println!(
        "non-speculative analysis: {} possible misses",
        base.miss_count()
    );
    println!(
        "speculative analysis:     {} possible misses ({} more, {} squashed misses)",
        spec.miss_count(),
        spec.miss_count() - base.miss_count(),
        spec.speculative_miss_count()
    );

    let secret_access = spec
        .secret_accesses()
        .next()
        .expect("the program has a secret-indexed access");
    println!(
        "secret-indexed access `table[secret]`: guaranteed hit without speculation = {}, \
         with speculation = {}",
        base.secret_accesses().next().unwrap().observable_hit,
        secret_access.observable_hit,
    );
    println!(
        "=> a mispredicted branch can evict a table line, so the access time depends on the \
         secret: a timing side channel that only appears under speculative execution."
    );
}
