//! Side-channel hunt over the crypto suite: runs the leak detector under
//! both analyses and confirms findings empirically with the simulator.
//!
//! Run with `cargo run --release --example side_channel_hunt`.

use spec_analysis::SideChannelComparison;
use spec_workloads::crypto_suite;

fn main() {
    let cache_lines = 64u64;
    let cache = spec_cache::CacheConfig::fully_associative(cache_lines as usize, 64);
    let comparison = SideChannelComparison::new(cache);

    println!(
        "{:<10} {:>10}  {:<14} {:<14} {:<10}",
        "benchmark", "buffer(B)", "baseline", "speculative", "simulator"
    );
    for (workload, buffer) in crypto_suite(cache_lines) {
        let row = comparison.run(&workload.program, buffer);
        println!(
            "{:<10} {:>10}  {:<14} {:<14} {:<10}",
            row.name,
            row.buffer_bytes,
            if row.nonspec_leak {
                "LEAK"
            } else {
                "leak-free"
            },
            if row.spec_leak { "LEAK" } else { "leak-free" },
            match row.empirically_confirmed {
                Some(true) => "confirmed",
                Some(false) => "not reproduced",
                None => "-",
            }
        );
    }
    println!(
        "\nPrograms proved leak-free by the classic analysis can still leak once a mispredicted \
         branch drags extra lines into the cache — exactly the gap this analysis closes."
    );
}
