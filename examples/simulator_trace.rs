//! Reproduces the Figure 3 pipelined traces concretely: the same program,
//! executed by the simulator with and without a mispredicted branch, plus a
//! per-access event dump.
//!
//! Run with `cargo run --example simulator_trace`.

use spec_sim::{PredictorKind, SimConfig, SimInput, Simulator};
use spec_workloads::figure2_program;

fn main() {
    let cache_lines = 16u64;
    let cache = spec_cache::CacheConfig::fully_associative(cache_lines as usize, 64);
    let program = figure2_program(cache_lines);
    let input = SimInput::new(1, 0);

    let configs = [
        (
            "non-speculative",
            SimConfig::non_speculative().with_cache(cache),
        ),
        (
            "mispredicted speculation",
            SimConfig::default()
                .with_cache(cache)
                .with_predictor(PredictorKind::AlwaysWrong),
        ),
    ];

    for (label, config) in configs {
        let report = Simulator::new(config).run(&program, &input);
        println!("== {label} ==");
        println!(
            "  observable: {} misses, {} hits; squashed: {} misses; cycles: {}",
            report.observable_misses,
            report.observable_hits,
            report.speculative_misses,
            report.cycles
        );
        // Print the tail of the trace (the interesting part around the branch).
        for event in report.events.iter().rev().take(6).rev() {
            println!(
                "  {:>12} {}[block {}]  {}{}",
                program.block(event.block).label(),
                program.region(event.mem_block.region).name,
                event.mem_block.block_index,
                if event.hit { "hit " } else { "MISS" },
                if event.speculative {
                    "  (squashed)"
                } else {
                    ""
                }
            );
        }
        println!();
    }
    println!(
        "The mispredicted run performs one extra (squashed) load; its eviction makes the final \
         ph[k] access miss — the 512-miss-plus-one-hit vs. 513-miss contrast of Figure 3, \
         scaled down to a {cache_lines}-line cache."
    );
}
