//! Worst-case execution-time estimation over the real-time suite: compares
//! the miss bounds and WCET estimates of the baseline and the speculative
//! analysis (the paper's Table 5 use case).
//!
//! Run with `cargo run --release --example wcet_estimation`.

use spec_analysis::EteComparison;
use spec_workloads::ete_suite;

fn main() {
    let cache_lines = 64u64;
    let cache = spec_cache::CacheConfig::fully_associative(cache_lines as usize, 64);
    let comparison = EteComparison::new(cache);

    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>12} {:>12} {:>9}",
        "benchmark", "insts", "base miss", "spec miss", "base WCET", "spec WCET", "underest."
    );
    for workload in ete_suite(cache_lines) {
        let row = comparison.run(&workload.program);
        let underestimation = if row.nonspec_wcet > 0 {
            format!(
                "{:.1}%",
                100.0 * (row.spec_wcet as f64 - row.nonspec_wcet as f64) / row.nonspec_wcet as f64
            )
        } else {
            "-".to_string()
        };
        println!(
            "{:<10} {:>8} {:>10} {:>10} {:>12} {:>12} {:>9}",
            row.name,
            row.instructions,
            row.nonspec_miss,
            row.spec_miss,
            row.nonspec_wcet,
            row.spec_wcet,
            underestimation
        );
    }
    println!(
        "\nThe last column is how much a WCET bound computed without modelling speculation \
         underestimates the bound that accounts for it — a deadline 'proof' based on the \
         former may be bogus (paper, Section 2.1)."
    );
}
