//! `specan` — analyse programs written in the textual IR format.
//!
//! ```text
//! specan analyze <program.spec...> [options]   one configuration, per-access detail
//! specan compare <program.spec...> [options]   the standard configuration panel, in parallel
//! specan leaks   <program.spec>    [options]   side-channel verdict; exit code 1 on a leak
//! specan scan    <dir|files...>    [options]   sharded bundle scan; exit code 1 on any leak
//! specan worker  --shard-json <spec>           internal: run one shard, print its report
//! ```
//!
//! Common options: `--cache-lines N` (default 512) and `--json` (emit
//! machine-readable output).  `analyze` additionally accepts `--baseline`,
//! `--no-shadow`, `--merge-at-rollback`, `--no-unroll` and `--incremental`
//! (replay unchanged programs from a session directory, default
//! `.specan-session`, overridable with `--session-dir`).  Bundle-aware
//! commands (`analyze`, `compare`, `scan`) accept several files, `--jobs N`
//! (parallelism cap) and `--shard K/N` (run the K-th of N contiguous slices
//! of the sorted file list — for splitting one bundle across CI machines).
//! `scan` also accepts directories (searched recursively for `*.spec`),
//! `--panel <leak-check|comparison>`, `--in-process` (threads instead of
//! worker subprocesses) and `--session-dir DIR` (incremental: re-analyse
//! only the programs whose structural fingerprints changed since the last
//! scan against the same directory); its merged JSON report is
//! deterministic — bit-identical however the bundle was sharded and whether
//! or not a session replayed parts of it.
//!
//! Exit codes: `0` success (no leak), `1` leak detected (`leaks` and `scan`),
//! `2` usage or input error — so both gates are scriptable in CI:
//!
//! ```text
//! specan leaks examples/programs/victim.spec --cache-lines 8 || echo "LEAKY"
//! specan scan  examples/programs --jobs 4 --json > report.json
//! ```
//!
//! The program grammar is described in `spec_ir::text`; see
//! `examples/programs/` for ready-made inputs.

use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::process::ExitCode;

use spec_analysis::detect_leaks;
use spec_cache::CacheConfig;
use spec_core::batch::{
    self, discover_programs, run_shard, ExecMode, PanelKind, PanelSpec, ShardSpec,
};
use spec_core::incremental::{scan_bundle_incremental, AnalyzeSession, ScanSession};
use spec_core::session::comparison_configs;
use spec_core::{AnalysisOptions, AnalysisResult, Analyzer, BatchReport, Report};
use spec_ir::text::parse_program;
use spec_ir::Program;
use spec_vcfg::MergeStrategy;

/// Default session directory of `analyze --incremental`.
const DEFAULT_SESSION_DIR: &str = ".specan-session";

/// Prints a line to stdout, exiting quietly when the downstream consumer
/// closed the pipe (`specan ... | head` must not panic with a backtrace).
macro_rules! outln {
    ($($arg:tt)*) => {{
        use std::io::Write;
        if writeln!(std::io::stdout(), $($arg)*).is_err() {
            // 128 + SIGPIPE, the conventional status of a pipe-killed
            // process.  Exiting 0 here would fabricate a "no leak" verdict
            // for `specan leaks ... | grep -q` style pipelines.
            std::process::exit(141);
        }
    }};
}

const EXIT_LEAK: u8 = 1;
const EXIT_ERROR: u8 = 2;

enum Command {
    Analyze,
    Compare,
    Leaks,
    Scan,
    Worker,
}

struct Cli {
    command: Command,
    paths: Vec<String>,
    cache_lines: usize,
    json: bool,
    /// Parallelism cap: suite threads, and worker processes for `scan`.
    jobs: Option<NonZeroUsize>,
    /// `--shard K/N`: restrict to the K-th of N slices of the file list.
    shard: Option<(usize, usize)>,
    /// `scan`: run shards on threads instead of worker subprocesses.
    in_process: bool,
    /// `scan`: which panel each program runs under.
    panel: PanelKind,
    /// `worker`: the serialized [`ShardSpec`].
    shard_json: Option<String>,
    /// `analyze`/`scan`: where incremental session state lives.
    session_dir: Option<PathBuf>,
    /// `analyze`: replay unchanged programs from the session directory.
    incremental: bool,
    // `analyze`-only configuration knobs.
    baseline: bool,
    shadow: bool,
    merge_at_rollback: bool,
    unroll: bool,
}

fn usage() -> String {
    "usage: specan <analyze|compare|leaks|scan> <inputs...> [--cache-lines N] [--json]\n\
     \n\
     analyze   run one configuration and print the per-access classification\n\
     \x20         [--baseline] [--no-shadow] [--merge-at-rollback] [--no-unroll]\n\
     \x20         [--jobs N] [--shard K/N] [--incremental [--session-dir DIR]];\n\
     \x20         several files allowed (JSON output becomes an array);\n\
     \x20         --incremental replays byte-identical output for programs\n\
     \x20         unchanged since the last run against the session directory\n\
     \x20         (default .specan-session; replayed output carries the\n\
     \x20         original run's timing fields)\n\
     compare   prepare once, run the standard configuration panel in parallel\n\
     \x20         [--jobs N] [--shard K/N]; several files allowed (JSON output\n\
     \x20         becomes the merged batch report)\n\
     leaks     side-channel verdict under the speculative analysis;\n\
     \x20         exits 1 when a leak is detected (CI-friendly)\n\
     scan      discover *.spec under the given files/directories, run the\n\
     \x20         panel per program sharded across worker processes and print\n\
     \x20         one merged deterministic report; exits 1 if any program\n\
     \x20         leaks.  [--jobs N] [--shard K/N] [--in-process]\n\
     \x20         [--panel <leak-check|comparison>] [--session-dir DIR];\n\
     \x20         with --session-dir only programs whose structural\n\
     \x20         fingerprints changed since the last scan are re-analysed\n\
     \x20         (the merged report stays bit-identical to a fresh scan)\n\
     worker    internal: --shard-json <spec|-> runs one scan shard and\n\
     \x20         prints its report as JSON (`-` reads the spec from stdin)"
        .to_string()
}

fn parse_shard(value: &str) -> Result<(usize, usize), String> {
    let err = || format!("`{value}` is not of the form K/N (e.g. 1/4)");
    let (k, n) = value.split_once('/').ok_or_else(err)?;
    let k: usize = k.parse().map_err(|_| err())?;
    let n: usize = n.parse().map_err(|_| err())?;
    if n == 0 || k == 0 || k > n {
        return Err(format!("--shard needs 1 <= K <= N, got {k}/{n}"));
    }
    Ok((k, n))
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut iter = args.iter().peekable();
    let command = match iter.next().map(String::as_str) {
        Some("analyze") => Command::Analyze,
        Some("compare") => Command::Compare,
        Some("leaks") => Command::Leaks,
        Some("scan") => Command::Scan,
        Some("worker") => Command::Worker,
        Some("--help" | "-h" | "help") | None => return Err(usage()),
        Some(other) => {
            return Err(format!("unrecognised command `{other}`\n{}", usage()));
        }
    };
    let mut cli = Cli {
        command,
        paths: Vec::new(),
        cache_lines: 512,
        json: false,
        jobs: None,
        shard: None,
        in_process: false,
        panel: PanelKind::Comparison,
        shard_json: None,
        session_dir: None,
        incremental: false,
        baseline: false,
        shadow: true,
        merge_at_rollback: false,
        unroll: true,
    };
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .ok_or_else(|| format!("{flag} needs a value"))
                .cloned()
        };
        match arg.as_str() {
            "--cache-lines" => {
                let value = value_of("--cache-lines")?;
                cli.cache_lines = value
                    .parse()
                    .map_err(|_| format!("`{value}` is not a number"))?;
            }
            "--json" => cli.json = true,
            "--jobs" if matches!(cli.command, Command::Leaks | Command::Worker) => {
                return Err(format!("`--jobs` does not apply here\n{}", usage()));
            }
            "--jobs" => {
                let value = value_of("--jobs")?;
                cli.jobs = Some(
                    value
                        .parse()
                        .map_err(|_| format!("`{value}` is not a positive number"))?,
                );
            }
            "--shard"
                if !matches!(
                    cli.command,
                    Command::Analyze | Command::Compare | Command::Scan
                ) =>
            {
                return Err(format!("`--shard` does not apply here\n{}", usage()));
            }
            "--shard" => cli.shard = Some(parse_shard(&value_of("--shard")?)?),
            "--in-process" if !matches!(cli.command, Command::Scan) => {
                return Err(format!(
                    "`--in-process` only applies to `scan`\n{}",
                    usage()
                ));
            }
            "--in-process" => cli.in_process = true,
            "--panel" if !matches!(cli.command, Command::Scan) => {
                return Err(format!("`--panel` only applies to `scan`\n{}", usage()));
            }
            "--panel" => {
                let value = value_of("--panel")?;
                cli.panel = match value.as_str() {
                    "leak-check" => PanelKind::LeakCheck,
                    "comparison" => PanelKind::Comparison,
                    other => {
                        return Err(format!(
                            "unknown panel `{other}` (expected leak-check or comparison)"
                        ))
                    }
                };
            }
            "--shard-json" if !matches!(cli.command, Command::Worker) => {
                return Err(format!(
                    "`--shard-json` only applies to `worker`\n{}",
                    usage()
                ));
            }
            "--shard-json" => cli.shard_json = Some(value_of("--shard-json")?),
            "--session-dir" if !matches!(cli.command, Command::Analyze | Command::Scan) => {
                return Err(format!(
                    "`--session-dir` only applies to `analyze` and `scan`\n{}",
                    usage()
                ));
            }
            "--session-dir" => {
                cli.session_dir = Some(PathBuf::from(value_of("--session-dir")?));
            }
            "--incremental" if !matches!(cli.command, Command::Analyze) => {
                return Err(format!(
                    "`--incremental` only applies to `analyze` (for `scan`, \
                     `--session-dir` alone enables it)\n{}",
                    usage()
                ));
            }
            "--incremental" => cli.incremental = true,
            flag @ ("--baseline" | "--no-shadow" | "--merge-at-rollback" | "--no-unroll")
                if !matches!(cli.command, Command::Analyze) =>
            {
                return Err(format!("`{flag}` only applies to `analyze`\n{}", usage()));
            }
            "--baseline" => cli.baseline = true,
            "--no-shadow" => cli.shadow = false,
            "--merge-at-rollback" => cli.merge_at_rollback = true,
            "--no-unroll" => cli.unroll = false,
            "--help" | "-h" => return Err(usage()),
            other if !other.starts_with('-') => cli.paths.push(other.to_string()),
            other => return Err(format!("unrecognised argument `{other}`\n{}", usage())),
        }
    }
    match cli.command {
        Command::Worker => {
            if cli.shard_json.is_none() {
                return Err(format!("`worker` needs --shard-json\n{}", usage()));
            }
        }
        Command::Leaks => {
            if cli.paths.len() != 1 {
                return Err(format!(
                    "`leaks` takes exactly one <program.spec>\n{}",
                    usage()
                ));
            }
        }
        Command::Analyze if cli.session_dir.is_some() && !cli.incremental => {
            return Err(format!(
                "`analyze --session-dir` needs `--incremental`\n{}",
                usage()
            ));
        }
        _ => {
            if cli.paths.is_empty() {
                return Err(format!("missing <program.spec>\n{}", usage()));
            }
        }
    }
    Ok(cli)
}

fn load_program(path: &str) -> Result<Program, String> {
    let source =
        std::fs::read_to_string(path).map_err(|err| format!("cannot read `{path}`: {err}"))?;
    parse_program(&source).map_err(|err| format!("cannot parse `{path}`: {err}"))
}

fn analyze_options(cli: &Cli) -> Result<AnalysisOptions, String> {
    let mut builder = AnalysisOptions::builder()
        .cache(CacheConfig::fully_associative(cli.cache_lines, 64))
        .speculative(!cli.baseline)
        .shadow(cli.shadow)
        .unroll_loops(cli.unroll);
    if cli.merge_at_rollback {
        builder = builder.merge_strategy(MergeStrategy::MergeAtRollback);
    }
    builder
        .build()
        .map_err(|err| format!("invalid configuration: {err}"))
}

/// Expands the positional paths into the bundle this invocation works on:
/// sorted discovery (directories allowed for `scan` only), then the
/// `--shard K/N` slice.  An empty slice is legal — a CI fleet may have more
/// machines than programs.
fn select_files(cli: &Cli) -> Result<Vec<PathBuf>, String> {
    let paths: Vec<PathBuf> = cli.paths.iter().map(PathBuf::from).collect();
    if !matches!(cli.command, Command::Scan) {
        if let Some(dir) = paths.iter().find(|p| p.is_dir()) {
            return Err(format!(
                "`{}` is a directory (only `scan` searches directories)",
                dir.display()
            ));
        }
    }
    let mut files = discover_programs(&paths).map_err(|err| err.to_string())?;
    if let Some((k, n)) = cli.shard {
        // Machine K of N takes slice K of the same near-even contiguous
        // split the process-level sharding uses.
        files = files[batch::shard_slice(files.len(), k, n)].to_vec();
    }
    Ok(files)
}

fn suite_analyzer(cli: &Cli) -> Analyzer {
    let mut analyzer = Analyzer::new();
    if let Some(jobs) = cli.jobs {
        analyzer = analyzer.max_suite_threads(jobs);
    }
    analyzer
}

/// `--jobs`, defaulting to the machine's parallelism.
fn effective_jobs(cli: &Cli) -> usize {
    cli.jobs
        .map(NonZeroUsize::get)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, NonZeroUsize::get))
}

/// `true` when the invocation addresses a bundle rather than one file —
/// several paths, or a `--shard` slice (whose size varies per machine, so
/// the output schema must not depend on it).
fn bundle_mode(cli: &Cli) -> bool {
    cli.paths.len() > 1 || cli.shard.is_some()
}

fn banner(cli: &Cli, program: &Program) -> String {
    format!(
        "analysing `{}` ({} blocks, {} instructions, {} branches) on a {}-line cache\n",
        program.name(),
        program.blocks().len(),
        program.instruction_count(),
        program.branch_count(),
        cli.cache_lines
    )
}

fn print_banner(cli: &Cli, program: &Program) {
    if !cli.json {
        outln!("{}", banner(cli, program));
    }
}

/// Per-access JSON array for `analyze --json`.
fn accesses_json(result: &AnalysisResult) -> String {
    use spec_core::json;
    let mut out = String::from("[\n");
    let accesses = result.accesses();
    for (i, access) in accesses.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!(
            "\"block\": {}, ",
            json::string(&result.program.block(access.block).label())
        ));
        out.push_str(&format!(
            "\"region\": {}, ",
            json::string(&access.region_name)
        ));
        out.push_str(&format!("\"inst_index\": {}, ", access.inst_index));
        out.push_str(&format!("\"observable_hit\": {}, ", access.observable_hit));
        out.push_str(&format!(
            "\"speculative_miss\": {}, ",
            access.is_speculative_miss()
        ));
        out.push_str(&format!(
            "\"secret_dependent\": {}",
            access.secret_dependent
        ));
        out.push_str(if i + 1 == accesses.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    out.push_str("  ]");
    out
}

/// The configuration knobs that shape `analyze` output, rendered stably —
/// the replay key of the incremental session covers the program text *and*
/// this signature, so a flag change can never replay a stale rendering.
fn analyze_signature(cli: &Cli) -> String {
    format!(
        "json={};lines={};baseline={};shadow={};mar={};unroll={}",
        cli.json, cli.cache_lines, cli.baseline, cli.shadow, cli.merge_at_rollback, cli.unroll
    )
}

/// One `analyze` unit of work: its rendered output (text or JSON object),
/// replayed from `session` when the program is unchanged since the output
/// was stored.
fn analyze_one(
    cli: &Cli,
    path: &std::path::Path,
    session: Option<&AnalyzeSession>,
) -> Result<String, String> {
    let options = analyze_options(cli)?;
    let label = if cli.baseline {
        "baseline"
    } else {
        "speculative"
    };
    let program = load_program(&path.display().to_string())?;
    let key = session.map(|session| {
        let key = AnalyzeSession::key(&program, &analyze_signature(cli));
        (session, key)
    });
    if let Some((session, key)) = &key {
        if let Some(stored) = session.lookup(*key) {
            // Replayed byte-for-byte — including the original run's timing
            // fields, which a CI diff strips anyway.
            eprintln!("session: replayed `{}`", path.display());
            return Ok(stored);
        }
    }
    let prepared = Analyzer::new().prepare(&program);
    let result = prepared.run(&options);
    let leaks = detect_leaks(&result);
    let output = if cli.json {
        let report = Report::from_runs(prepared.program().name(), [(label, &result)]);
        // Wrap the summary row together with the per-access detail.
        format!(
            "{{\n  \"summary\": {},\n  \"leak_detected\": {},\n  \"accesses\": {}\n}}",
            indent_json(&report.to_json()),
            leaks.leak_detected(),
            accesses_json(&result)
        )
    } else {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{}", banner(cli, &program));
        let _ = writeln!(
            out,
            "== {label} analysis of `{}` ==",
            prepared.program().name()
        );
        let _ = writeln!(
            out,
            "  accesses: {}   guaranteed hits: {}   possible misses: {}   squashed misses: {}",
            result.access_count(),
            result.must_hit_count(),
            result.miss_count(),
            result.speculative_miss_count()
        );
        let _ = writeln!(
            out,
            "  speculated branches: {}   fixpoint iterations: {}   analysis time: {:.3}s",
            result.speculated_branches,
            result.iterations(),
            result.elapsed.as_secs_f64()
        );
        for access in result.accesses() {
            if access.observable_hit && !access.is_speculative_miss() {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:>10}  {:<20} {}{}",
                result.program.block(access.block).label(),
                format!("{}[#{}]", access.region_name, access.inst_index),
                if access.observable_hit {
                    "hit, but may miss speculatively"
                } else {
                    "may miss"
                },
                if access.secret_dependent {
                    "  [secret-indexed]"
                } else {
                    ""
                }
            );
        }
        if leaks.secret_accesses == 0 {
            let _ = writeln!(
                out,
                "  no secret-indexed accesses: side-channel check not applicable"
            );
        } else if leaks.leak_detected() {
            let _ = writeln!(
                out,
                "  LEAK: {} of {} secret-indexed accesses may show secret-dependent timing",
                leaks.findings.len(),
                leaks.secret_accesses
            );
        } else {
            let _ = writeln!(out, "  no cache side-channel leak detected");
        }
        out.trim_end().to_string()
    };
    if let Some((session, key)) = key {
        eprintln!("session: analysed `{}`", path.display());
        if let Err(err) = session.store(key, &output) {
            // A failed store only costs the next replay; say so and go on.
            eprintln!(
                "session: warning: cannot store `{}` in {}: {err}",
                path.display(),
                session.dir().display()
            );
        }
    }
    Ok(output)
}

/// Runs `work` over every file, fanning out across at most `--jobs` scoped
/// threads, and returns the rendered outputs in input order.
fn map_files<F>(cli: &Cli, files: &[PathBuf], work: F) -> Result<Vec<String>, String>
where
    F: Fn(&PathBuf) -> Result<String, String> + Sync,
{
    let threads = effective_jobs(cli).min(files.len()).max(1);
    if threads == 1 {
        return files.iter().map(&work).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    let next = AtomicUsize::new(0);
    let slots: std::sync::Mutex<Vec<Option<Result<String, String>>>> =
        std::sync::Mutex::new(files.iter().map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(file) = files.get(index) else {
                    break;
                };
                let output = work(file);
                slots.lock().expect("analyze slots poisoned")[index] = Some(output);
            });
        }
    });
    slots
        .into_inner()
        .expect("analyze slots poisoned")
        .into_iter()
        .map(|slot| slot.expect("every file was analysed"))
        .collect()
}

fn cmd_analyze(cli: &Cli) -> Result<u8, String> {
    let files = select_files(cli)?;
    let session = cli.incremental.then(|| {
        AnalyzeSession::new(
            cli.session_dir
                .clone()
                .unwrap_or_else(|| PathBuf::from(DEFAULT_SESSION_DIR)),
        )
    });
    let outputs = map_files(cli, &files, |path| analyze_one(cli, path, session.as_ref()))?;
    if cli.json && bundle_mode(cli) {
        // A bundle renders as an array of the per-file objects — even when
        // a `--shard` slice leaves zero or one file, so the schema never
        // depends on how the bundle happened to split across machines.
        outln!("[");
        for (i, output) in outputs.iter().enumerate() {
            let comma = if i + 1 == outputs.len() { "" } else { "," };
            outln!("{}{comma}", output.trim_end());
        }
        outln!("]");
    } else {
        for (i, output) in outputs.iter().enumerate() {
            if i > 0 {
                outln!();
            }
            outln!("{output}");
        }
    }
    Ok(0)
}

fn cmd_compare(cli: &Cli) -> Result<u8, String> {
    let files = select_files(cli)?;
    let cache = CacheConfig::fully_associative(cli.cache_lines, 64);
    // Reject degenerate geometries with a usage error before the panel's
    // presets (which assume a valid cache) are built.
    AnalysisOptions::builder()
        .cache(cache)
        .build()
        .map_err(|err| format!("invalid configuration: {err}"))?;
    if !bundle_mode(cli) {
        // A plain single-file invocation: the original timed report.  A
        // one-file `--shard` slice stays on the batch path below so every
        // machine of a CI matrix emits the same (mergeable) schema.
        let path = &files[0];
        let program = load_program(&path.display().to_string())?;
        print_banner(cli, &program);
        let prepared = suite_analyzer(cli).prepare(&program);
        let suite = prepared.run_suite(&comparison_configs(cache));
        let report = suite.report();
        if cli.json {
            outln!("{}", report.to_json());
        } else {
            outln!("{}", report.to_string().trim_end());
        }
        return Ok(0);
    }
    // Bundle: the deterministic merged batch report, computed in-process.
    let panel = PanelSpec {
        kind: PanelKind::Comparison,
        cache_lines: cli.cache_lines,
    };
    let report = if files.is_empty() {
        // A legal empty `--shard` slice: this machine simply has no work.
        BatchReport {
            panel,
            programs: Vec::new(),
        }
    } else {
        batch::run_bundle(&files, panel, effective_jobs(cli), &ExecMode::InProcess)
            .map_err(|e| e.to_string())?
    };
    if cli.json {
        outln!("{}", report.to_json());
    } else {
        outln!("{}", report.to_string().trim_end());
    }
    Ok(0)
}

fn cmd_leaks(cli: &Cli) -> Result<u8, String> {
    let program = load_program(&cli.paths[0])?;
    print_banner(cli, &program);
    let prepared = Analyzer::new().prepare(&program);
    let cache = CacheConfig::fully_associative(cli.cache_lines, 64);
    let baseline = AnalysisOptions::builder()
        .baseline()
        .cache(cache)
        .build()
        .map_err(|err| format!("invalid configuration: {err}"))?;
    let speculative = AnalysisOptions::builder()
        .cache(cache)
        .build()
        .map_err(|err| format!("invalid configuration: {err}"))?;
    let suite = prepared.run_suite(&[("baseline", baseline), ("speculative", speculative)]);
    let base_leaks = detect_leaks(&suite.runs[0].result);
    let spec_leaks = detect_leaks(&suite.runs[1].result);
    if cli.json {
        use spec_core::json;
        let mut findings = String::from("[");
        for (i, finding) in spec_leaks.findings.iter().enumerate() {
            if i > 0 {
                findings.push_str(", ");
            }
            findings.push_str(&format!(
                "{{\"region\": {}, \"inst_index\": {}, \"speculative_only\": {}}}",
                json::string(&finding.region),
                finding.inst_index,
                finding.speculative_only
            ));
        }
        findings.push(']');
        outln!(
            "{{\n  \"program\": {},\n  \"secret_accesses\": {},\n  \"baseline_leak\": {},\n  \
             \"speculative_leak\": {},\n  \"findings\": {}\n}}",
            json::string(&suite.program),
            spec_leaks.secret_accesses,
            base_leaks.leak_detected(),
            spec_leaks.leak_detected(),
            findings
        );
    } else {
        outln!("side-channel analysis of `{}`:", suite.program);
        outln!(
            "  baseline:    {}",
            if base_leaks.leak_detected() {
                "LEAK"
            } else {
                "leak-free"
            }
        );
        outln!(
            "  speculative: {}",
            if spec_leaks.leak_detected() {
                "LEAK"
            } else {
                "leak-free"
            }
        );
        for finding in &spec_leaks.findings {
            outln!(
                "  finding: {}[#{}]{}",
                finding.region,
                finding.inst_index,
                if finding.speculative_only {
                    "  (squashed execution only)"
                } else {
                    ""
                }
            );
        }
    }
    Ok(if spec_leaks.leak_detected() {
        EXIT_LEAK
    } else {
        0
    })
}

fn cmd_scan(cli: &Cli) -> Result<u8, String> {
    let files = select_files(cli)?;
    let panel = PanelSpec {
        kind: cli.panel,
        cache_lines: cli.cache_lines,
    };
    panel.configs().map_err(|err| err.to_string())?;
    let report = if files.is_empty() {
        // An empty `--shard` slice: this machine simply has no work (and
        // nothing worth persisting into a session).
        BatchReport {
            panel,
            programs: Vec::new(),
        }
    } else {
        let jobs = effective_jobs(cli);
        let mode = if cli.in_process {
            ExecMode::InProcess
        } else {
            let worker_exe = std::env::current_exe()
                .map_err(|err| format!("cannot locate the specan executable: {err}"))?;
            ExecMode::Subprocess { worker_exe }
        };
        match &cli.session_dir {
            Some(dir) => {
                let session = ScanSession::new(dir);
                let outcome = scan_bundle_incremental(&files, panel, jobs, &mode, &session)
                    .map_err(|err| err.to_string())?;
                eprintln!(
                    "session: {} program(s) reused, {} analysed ({})",
                    outcome.reused,
                    outcome.analyzed,
                    session.dir().display()
                );
                if let Some(err) = outcome.store_error {
                    // Losing the warm start must not cost the leak verdict.
                    eprintln!(
                        "session: warning: cannot persist session in {}: {err}",
                        session.dir().display()
                    );
                }
                outcome.report
            }
            None => batch::run_bundle(&files, panel, jobs, &mode).map_err(|err| err.to_string())?,
        }
    };
    if cli.json {
        outln!("{}", report.to_json());
    } else {
        outln!("{}", report.to_string().trim_end());
    }
    Ok(if report.any_leak() { EXIT_LEAK } else { 0 })
}

fn cmd_worker(cli: &Cli) -> Result<u8, String> {
    let spec_json = match cli.shard_json.as_deref().expect("validated by parse_args") {
        // `-` means stdin — the parent pipes the spec through it because a
        // large shard would not fit in an argv string.
        "-" => {
            use std::io::Read as _;
            let mut input = String::new();
            std::io::stdin()
                .read_to_string(&mut input)
                .map_err(|err| format!("cannot read the shard spec from stdin: {err}"))?;
            input
        }
        inline => inline.to_string(),
    };
    let spec = ShardSpec::from_json(&spec_json).map_err(|err| err.to_string())?;
    let report = run_shard(&spec).map_err(|err| err.to_string())?;
    outln!("{}", report.to_json());
    Ok(0)
}

/// Re-indents a nested JSON blob by two spaces (cosmetic only).
fn indent_json(json: &str) -> String {
    json.replace('\n', "\n  ")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(EXIT_ERROR);
        }
    };
    let outcome = match cli.command {
        Command::Analyze => cmd_analyze(&cli),
        Command::Compare => cmd_compare(&cli),
        Command::Leaks => cmd_leaks(&cli),
        Command::Scan => cmd_scan(&cli),
        Command::Worker => cmd_worker(&cli),
    };
    match outcome {
        Ok(code) => ExitCode::from(code),
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(EXIT_ERROR)
        }
    }
}
