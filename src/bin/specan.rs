//! `specan` — analyse programs written in the textual IR format.
//!
//! ```text
//! specan analyze <program.spec> [options]   one configuration, per-access detail
//! specan compare <program.spec> [options]   the standard configuration panel, in parallel
//! specan leaks   <program.spec> [options]   side-channel verdict; exit code 1 on a leak
//! ```
//!
//! Common options: `--cache-lines N` (default 512) and `--json` (emit
//! machine-readable output).  `analyze` additionally accepts `--baseline`,
//! `--no-shadow`, `--merge-at-rollback` and `--no-unroll`.
//!
//! Exit codes: `0` success (no leak), `1` leak detected (`leaks` only),
//! `2` usage or input error — so `specan leaks` is scriptable in CI:
//!
//! ```text
//! specan leaks examples/programs/victim.spec --cache-lines 8 || echo "LEAKY"
//! ```
//!
//! The program grammar is described in `spec_ir::text`; see
//! `examples/programs/victim.spec` for a ready-made input.

use std::process::ExitCode;

use spec_analysis::{detect_leaks, LeakReport};
use spec_cache::CacheConfig;
use spec_core::session::comparison_configs;
use spec_core::{AnalysisOptions, AnalysisResult, Analyzer, PreparedProgram, Report};
use spec_ir::text::parse_program;
use spec_ir::Program;
use spec_vcfg::MergeStrategy;

/// Prints a line to stdout, exiting quietly when the downstream consumer
/// closed the pipe (`specan ... | head` must not panic with a backtrace).
macro_rules! outln {
    ($($arg:tt)*) => {{
        use std::io::Write;
        if writeln!(std::io::stdout(), $($arg)*).is_err() {
            // 128 + SIGPIPE, the conventional status of a pipe-killed
            // process.  Exiting 0 here would fabricate a "no leak" verdict
            // for `specan leaks ... | grep -q` style pipelines.
            std::process::exit(141);
        }
    }};
}

const EXIT_LEAK: u8 = 1;
const EXIT_ERROR: u8 = 2;

enum Command {
    Analyze,
    Compare,
    Leaks,
}

struct Cli {
    command: Command,
    path: String,
    cache_lines: usize,
    json: bool,
    // `analyze`-only configuration knobs.
    baseline: bool,
    shadow: bool,
    merge_at_rollback: bool,
    unroll: bool,
}

fn usage() -> String {
    "usage: specan <analyze|compare|leaks> <program.spec> [--cache-lines N] [--json]\n\
     \n\
     analyze   run one configuration and print the per-access classification\n\
     \x20         [--baseline] [--no-shadow] [--merge-at-rollback] [--no-unroll]\n\
     compare   prepare once, run the standard configuration panel in parallel\n\
     leaks     side-channel verdict under the speculative analysis;\n\
     \x20         exits 1 when a leak is detected (CI-friendly)"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut iter = args.iter().peekable();
    let command = match iter.next().map(String::as_str) {
        Some("analyze") => Command::Analyze,
        Some("compare") => Command::Compare,
        Some("leaks") => Command::Leaks,
        Some("--help" | "-h" | "help") | None => return Err(usage()),
        Some(other) => {
            return Err(format!("unrecognised command `{other}`\n{}", usage()));
        }
    };
    let mut cli = Cli {
        command,
        path: String::new(),
        cache_lines: 512,
        json: false,
        baseline: false,
        shadow: true,
        merge_at_rollback: false,
        unroll: true,
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--cache-lines" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--cache-lines needs a value".to_string())?;
                cli.cache_lines = value
                    .parse()
                    .map_err(|_| format!("`{value}` is not a number"))?;
            }
            "--json" => cli.json = true,
            flag @ ("--baseline" | "--no-shadow" | "--merge-at-rollback" | "--no-unroll")
                if !matches!(cli.command, Command::Analyze) =>
            {
                return Err(format!("`{flag}` only applies to `analyze`\n{}", usage()));
            }
            "--baseline" => cli.baseline = true,
            "--no-shadow" => cli.shadow = false,
            "--merge-at-rollback" => cli.merge_at_rollback = true,
            "--no-unroll" => cli.unroll = false,
            "--help" | "-h" => return Err(usage()),
            other if cli.path.is_empty() && !other.starts_with('-') => {
                cli.path = other.to_string();
            }
            other => return Err(format!("unrecognised argument `{other}`\n{}", usage())),
        }
    }
    if cli.path.is_empty() {
        return Err(format!("missing <program.spec>\n{}", usage()));
    }
    Ok(cli)
}

fn load_program(path: &str) -> Result<Program, String> {
    let source =
        std::fs::read_to_string(path).map_err(|err| format!("cannot read `{path}`: {err}"))?;
    parse_program(&source).map_err(|err| format!("cannot parse `{path}`: {err}"))
}

fn analyze_options(cli: &Cli) -> Result<AnalysisOptions, String> {
    let mut builder = AnalysisOptions::builder()
        .cache(CacheConfig::fully_associative(cli.cache_lines, 64))
        .speculative(!cli.baseline)
        .shadow(cli.shadow)
        .unroll_loops(cli.unroll);
    if cli.merge_at_rollback {
        builder = builder.merge_strategy(MergeStrategy::MergeAtRollback);
    }
    builder
        .build()
        .map_err(|err| format!("invalid configuration: {err}"))
}

/// Per-access detail of one run, as text.
fn print_accesses(result: &AnalysisResult) {
    for access in result.accesses() {
        if access.observable_hit && !access.is_speculative_miss() {
            continue; // only report the interesting (possibly missing) accesses
        }
        outln!(
            "  {:>10}  {:<20} {}{}",
            result.program.block(access.block).label(),
            format!("{}[#{}]", access.region_name, access.inst_index),
            if access.observable_hit {
                "hit, but may miss speculatively"
            } else {
                "may miss"
            },
            if access.secret_dependent {
                "  [secret-indexed]"
            } else {
                ""
            }
        );
    }
}

fn print_leaks(leaks: &LeakReport) {
    if leaks.secret_accesses == 0 {
        outln!("  no secret-indexed accesses: side-channel check not applicable");
    } else if leaks.leak_detected() {
        outln!(
            "  LEAK: {} of {} secret-indexed accesses may show secret-dependent timing",
            leaks.findings.len(),
            leaks.secret_accesses
        );
    } else {
        outln!("  no cache side-channel leak detected");
    }
}

/// Per-access JSON array for `analyze --json`.
fn accesses_json(result: &AnalysisResult) -> String {
    use spec_core::json;
    let mut out = String::from("[\n");
    let accesses = result.accesses();
    for (i, access) in accesses.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!(
            "\"block\": {}, ",
            json::string(&result.program.block(access.block).label())
        ));
        out.push_str(&format!(
            "\"region\": {}, ",
            json::string(&access.region_name)
        ));
        out.push_str(&format!("\"inst_index\": {}, ", access.inst_index));
        out.push_str(&format!("\"observable_hit\": {}, ", access.observable_hit));
        out.push_str(&format!(
            "\"speculative_miss\": {}, ",
            access.is_speculative_miss()
        ));
        out.push_str(&format!(
            "\"secret_dependent\": {}",
            access.secret_dependent
        ));
        out.push_str(if i + 1 == accesses.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    out.push_str("  ]");
    out
}

fn cmd_analyze(cli: &Cli, prepared: &PreparedProgram) -> Result<u8, String> {
    let options = analyze_options(cli)?;
    let label = if cli.baseline {
        "baseline"
    } else {
        "speculative"
    };
    let result = prepared.run(&options);
    let leaks = detect_leaks(&result);
    if cli.json {
        let report = Report::from_runs(prepared.program().name(), [(label, &result)]);
        // Wrap the summary row together with the per-access detail.
        let summary = report.to_json();
        outln!(
            "{{\n  \"summary\": {},\n  \"leak_detected\": {},\n  \"accesses\": {}\n}}",
            indent_json(&summary),
            leaks.leak_detected(),
            accesses_json(&result)
        );
    } else {
        outln!("== {label} analysis of `{}` ==", prepared.program().name());
        outln!(
            "  accesses: {}   guaranteed hits: {}   possible misses: {}   squashed misses: {}",
            result.access_count(),
            result.must_hit_count(),
            result.miss_count(),
            result.speculative_miss_count()
        );
        outln!(
            "  speculated branches: {}   fixpoint iterations: {}   analysis time: {:.3}s",
            result.speculated_branches,
            result.iterations(),
            result.elapsed.as_secs_f64()
        );
        print_accesses(&result);
        print_leaks(&leaks);
    }
    Ok(0)
}

fn cmd_compare(cli: &Cli, prepared: &PreparedProgram) -> Result<u8, String> {
    let cache = CacheConfig::fully_associative(cli.cache_lines, 64);
    // Reject degenerate geometries with a usage error before the panel's
    // presets (which assume a valid cache) are built.
    AnalysisOptions::builder()
        .cache(cache)
        .build()
        .map_err(|err| format!("invalid configuration: {err}"))?;
    let suite = prepared.run_suite(&comparison_configs(cache));
    let report = suite.report();
    if cli.json {
        outln!("{}", report.to_json());
    } else {
        outln!("{}", report.to_string().trim_end());
    }
    Ok(0)
}

fn cmd_leaks(cli: &Cli, prepared: &PreparedProgram) -> Result<u8, String> {
    let cache = CacheConfig::fully_associative(cli.cache_lines, 64);
    let baseline = AnalysisOptions::builder()
        .baseline()
        .cache(cache)
        .build()
        .map_err(|err| format!("invalid configuration: {err}"))?;
    let speculative = AnalysisOptions::builder()
        .cache(cache)
        .build()
        .map_err(|err| format!("invalid configuration: {err}"))?;
    let suite = prepared.run_suite(&[("baseline", baseline), ("speculative", speculative)]);
    let base_leaks = detect_leaks(&suite.runs[0].result);
    let spec_leaks = detect_leaks(&suite.runs[1].result);
    if cli.json {
        use spec_core::json;
        let mut findings = String::from("[");
        for (i, finding) in spec_leaks.findings.iter().enumerate() {
            if i > 0 {
                findings.push_str(", ");
            }
            findings.push_str(&format!(
                "{{\"region\": {}, \"inst_index\": {}, \"speculative_only\": {}}}",
                json::string(&finding.region),
                finding.inst_index,
                finding.speculative_only
            ));
        }
        findings.push(']');
        outln!(
            "{{\n  \"program\": {},\n  \"secret_accesses\": {},\n  \"baseline_leak\": {},\n  \
             \"speculative_leak\": {},\n  \"findings\": {}\n}}",
            json::string(&suite.program),
            spec_leaks.secret_accesses,
            base_leaks.leak_detected(),
            spec_leaks.leak_detected(),
            findings
        );
    } else {
        outln!("side-channel analysis of `{}`:", suite.program);
        outln!(
            "  baseline:    {}",
            if base_leaks.leak_detected() {
                "LEAK"
            } else {
                "leak-free"
            }
        );
        outln!(
            "  speculative: {}",
            if spec_leaks.leak_detected() {
                "LEAK"
            } else {
                "leak-free"
            }
        );
        for finding in &spec_leaks.findings {
            outln!(
                "  finding: {}[#{}]{}",
                finding.region,
                finding.inst_index,
                if finding.speculative_only {
                    "  (squashed execution only)"
                } else {
                    ""
                }
            );
        }
    }
    Ok(if spec_leaks.leak_detected() {
        EXIT_LEAK
    } else {
        0
    })
}

/// Re-indents a nested JSON blob by two spaces (cosmetic only).
fn indent_json(json: &str) -> String {
    json.replace('\n', "\n  ")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(EXIT_ERROR);
        }
    };
    let program = match load_program(&cli.path) {
        Ok(program) => program,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(EXIT_ERROR);
        }
    };
    if !cli.json {
        outln!(
            "analysing `{}` ({} blocks, {} instructions, {} branches) on a {}-line cache\n",
            program.name(),
            program.blocks().len(),
            program.instruction_count(),
            program.branch_count(),
            cli.cache_lines
        );
    }
    let prepared = Analyzer::new().prepare(&program);
    let outcome = match cli.command {
        Command::Analyze => cmd_analyze(&cli, &prepared),
        Command::Compare => cmd_compare(&cli, &prepared),
        Command::Leaks => cmd_leaks(&cli, &prepared),
    };
    match outcome {
        Ok(code) => ExitCode::from(code),
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(EXIT_ERROR)
        }
    }
}
