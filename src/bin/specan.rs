//! `specan` — analyse a program written in the textual IR format.
//!
//! ```text
//! specan <program.spec> [--cache-lines N] [--baseline-only | --speculative-only]
//!        [--merge-at-rollback] [--no-shadow]
//! ```
//!
//! The tool parses the program (see `spec_ir::text` for the grammar), runs
//! the non-speculative baseline and/or the speculative analysis, prints the
//! per-access classification, and reports potential cache side-channel
//! leaks.  See `examples/programs/victim.spec` for a ready-made input.

use std::process::ExitCode;

use spec_analysis::detect_leaks;
use spec_cache::CacheConfig;
use spec_core::{AnalysisOptions, AnalysisResult, CacheAnalysis};
use spec_ir::text::parse_program;
use spec_vcfg::MergeStrategy;

struct Cli {
    path: String,
    cache_lines: usize,
    run_baseline: bool,
    run_speculative: bool,
    merge_at_rollback: bool,
    shadow: bool,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        path: String::new(),
        cache_lines: 512,
        run_baseline: true,
        run_speculative: true,
        merge_at_rollback: false,
        shadow: true,
    };
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--cache-lines" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--cache-lines needs a value".to_string())?;
                cli.cache_lines = value
                    .parse()
                    .map_err(|_| format!("`{value}` is not a number"))?;
            }
            "--baseline-only" => cli.run_speculative = false,
            "--speculative-only" => cli.run_baseline = false,
            "--merge-at-rollback" => cli.merge_at_rollback = true,
            "--no-shadow" => cli.shadow = false,
            "--help" | "-h" => return Err(usage()),
            other if cli.path.is_empty() && !other.starts_with('-') => {
                cli.path = other.to_string();
            }
            other => return Err(format!("unrecognised argument `{other}`\n{}", usage())),
        }
    }
    if cli.path.is_empty() {
        return Err(usage());
    }
    Ok(cli)
}

fn usage() -> String {
    "usage: specan <program.spec> [--cache-lines N] [--baseline-only | --speculative-only] \
     [--merge-at-rollback] [--no-shadow]"
        .to_string()
}

fn print_report(label: &str, result: &AnalysisResult) {
    println!("== {label} ==");
    println!(
        "  accesses: {}   guaranteed hits: {}   possible misses: {}   squashed misses: {}",
        result.access_count(),
        result.must_hit_count(),
        result.miss_count(),
        result.speculative_miss_count()
    );
    println!(
        "  speculated branches: {}   fixpoint iterations: {}   analysis time: {:.3}s",
        result.speculated_branches,
        result.iterations(),
        result.elapsed.as_secs_f64()
    );
    for access in result.accesses() {
        if access.observable_hit && !access.is_speculative_miss() {
            continue; // only report the interesting (possibly missing) accesses
        }
        println!(
            "  {:>10}  {:<20} {}{}",
            result.program.block(access.block).label(),
            format!("{}[#{}]", access.region_name, access.inst_index),
            if access.observable_hit { "hit, but may miss speculatively" } else { "may miss" },
            if access.secret_dependent { "  [secret-indexed]" } else { "" }
        );
    }
    let leaks = detect_leaks(result);
    if leaks.secret_accesses == 0 {
        println!("  no secret-indexed accesses: side-channel check not applicable");
    } else if leaks.leak_detected() {
        println!(
            "  LEAK: {} of {} secret-indexed accesses may show secret-dependent timing",
            leaks.findings.len(),
            leaks.secret_accesses
        );
    } else {
        println!("  no cache side-channel leak detected");
    }
    println!();
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let source = match std::fs::read_to_string(&cli.path) {
        Ok(source) => source,
        Err(err) => {
            eprintln!("cannot read `{}`: {err}", cli.path);
            return ExitCode::FAILURE;
        }
    };
    let program = match parse_program(&source) {
        Ok(program) => program,
        Err(err) => {
            eprintln!("cannot parse `{}`: {err}", cli.path);
            return ExitCode::FAILURE;
        }
    };
    let cache = CacheConfig::fully_associative(cli.cache_lines, 64);
    println!(
        "analysing `{}` ({} blocks, {} instructions, {} branches) on a {}-line cache\n",
        program.name(),
        program.blocks().len(),
        program.instruction_count(),
        program.branch_count(),
        cli.cache_lines
    );
    if cli.run_baseline {
        let result = CacheAnalysis::new(AnalysisOptions::non_speculative().with_cache(cache))
            .run(&program);
        print_report("non-speculative baseline", &result);
    }
    if cli.run_speculative {
        let mut options = AnalysisOptions::speculative()
            .with_cache(cache)
            .with_shadow(cli.shadow);
        if cli.merge_at_rollback {
            options = options.with_merge_strategy(MergeStrategy::MergeAtRollback);
        }
        let result = CacheAnalysis::new(options).run(&program);
        print_report("speculative analysis", &result);
    }
    ExitCode::SUCCESS
}
