//! `specan` — analyse programs written in the textual IR format.
//!
//! ```text
//! specan analyze <program.spec...> [options]   one configuration, per-access detail
//! specan compare <program.spec...> [options]   the standard configuration panel, in parallel
//! specan leaks   <program.spec>    [options]   side-channel verdict; exit code 1 on a leak
//! specan scan    <dir|files...>    [options]   sharded bundle scan; exit code 1 on any leak
//! specan merge   <reports.json...> [options]   verified fan-in of sharded scan artifacts
//! specan serve   [--addr H:P] [--jobs N]       persistent analysis service (NDJSON over TCP)
//!                [--max-session-bytes B]       ... with a byte-bounded session cache
//!                [--artifact-dir DIR]          ... persisting prepared sessions across
//!                [--max-store-bytes B]             restarts (byte-bounded, GC by recency)
//! specan gateway --backend H:P...              federate several servers behind one
//!                [--addr H:P] [--jobs N]       endpoint: fingerprint-affinity routing,
//!                [--probe-interval-ms N]       health-checked ejection/readmission and
//!                [--eject-after N]             transparent retry with re-route
//!                [--connect-timeout-ms N]
//!                [--request-timeout-ms N]
//! specan submit  [--addr H:P] <cmd> <args...>  script a running server; prints what the
//!                [--connect-timeout-ms N]      one-shot command would print
//!                [--read-timeout-ms N]
//! specan metrics [<addr>]                      scrape a server or gateway: prints its
//!                [--connect-timeout-ms N]      Prometheus text exposition
//!                [--read-timeout-ms N]
//! specan artifacts <list|verify|gc>            inspect/validate/collect an artifact store
//!                --artifact-dir DIR [--json] [--max-store-bytes B]
//! specan worker  --shard-json <spec>           internal: run one shard, print its report
//! ```
//!
//! Common options: `--cache-lines N` (default 512) and `--json` (emit
//! machine-readable output).  `analyze` additionally accepts `--baseline`,
//! `--no-shadow`, `--merge-at-rollback`, `--no-unroll` and `--incremental`
//! (replay unchanged programs from a session directory, default
//! `.specan-session`, overridable with `--session-dir`).  Bundle-aware
//! commands (`analyze`, `compare`, `scan`) accept several files, `--jobs N`
//! (parallelism cap) and `--shard K/N` (run the K-th of N contiguous slices
//! of the sorted file list — for splitting one bundle across CI machines).
//! `scan` also accepts directories (searched recursively for `*.spec`),
//! `--panel <leak-check|comparison>`, `--in-process` (threads instead of
//! worker subprocesses) and `--session-dir DIR` (incremental: re-analyse
//! only the programs whose structural fingerprints changed since the last
//! scan against the same directory); its merged JSON report is
//! deterministic — bit-identical however the bundle was sharded and whether
//! or not a session replayed parts of it.
//!
//! Exit codes: `0` success (no leak), `1` leak detected (`leaks` and `scan`),
//! `2` usage or input error — so both gates are scriptable in CI:
//!
//! ```text
//! specan leaks examples/programs/victim.spec --cache-lines 8 || echo "LEAKY"
//! specan scan  examples/programs --jobs 4 --json > report.json
//! ```
//!
//! The program grammar is described in `spec_ir::text`; see
//! `examples/programs/` for ready-made inputs.

use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::process::ExitCode;

use spec_analysis::detect_leaks;
use spec_cache::CacheConfig;
use spec_core::batch::{
    self, discover_programs, run_bundle_slice, run_shard, ExecMode, PanelKind, PanelSpec, ShardSpec,
};
use spec_core::gateway::{self, GatewayConfig};
use spec_core::incremental::{scan_bundle_incremental, AnalyzeSession, ScanSession, SessionCache};
use spec_core::service::{
    self, AnalyzeConfig, ClientOptions, Request, ServiceClient, ServiceConfig,
};
use spec_core::{
    AnalysisOptions, Analyzer, BatchReport, CacheOutcome, CacheSession, PreparedStore,
};
use spec_ir::text::parse_program;
use spec_ir::Program;

/// Default session directory of `analyze --incremental`.
const DEFAULT_SESSION_DIR: &str = ".specan-session";

/// Prints a line to stdout, exiting quietly when the downstream consumer
/// closed the pipe (`specan ... | head` must not panic with a backtrace).
macro_rules! outln {
    ($($arg:tt)*) => {{
        use std::io::Write;
        if writeln!(std::io::stdout(), $($arg)*).is_err() {
            // 128 + SIGPIPE, the conventional status of a pipe-killed
            // process.  Exiting 0 here would fabricate a "no leak" verdict
            // for `specan leaks ... | grep -q` style pipelines.
            std::process::exit(141);
        }
    }};
}

const EXIT_LEAK: u8 = 1;
const EXIT_ERROR: u8 = 2;

enum Command {
    Analyze,
    Compare,
    Leaks,
    Scan,
    Merge,
    Serve,
    Gateway,
    Artifacts,
    Worker,
}

struct Cli {
    command: Command,
    paths: Vec<String>,
    cache_lines: usize,
    json: bool,
    /// Parallelism cap: suite threads, and worker processes for `scan`.
    jobs: Option<NonZeroUsize>,
    /// `--shard K/N`: restrict to the K-th of N slices of the file list.
    shard: Option<(usize, usize)>,
    /// `scan`: run shards on threads instead of worker subprocesses.
    in_process: bool,
    /// `scan`: which panel each program runs under.
    panel: PanelKind,
    /// `worker`: the serialized [`ShardSpec`].
    shard_json: Option<String>,
    /// `serve`/`gateway`: the `host:port` to listen on.
    addr: Option<String>,
    /// `gateway`: the backend fleet (`--backend H:P`, repeatable).
    backends: Vec<String>,
    /// `gateway`: milliseconds between health-probe sweeps.
    probe_interval_ms: Option<u64>,
    /// `gateway`: consecutive-failure ejection threshold.
    eject_after: Option<u32>,
    /// `gateway`: backend connect deadline in milliseconds.
    connect_timeout_ms: Option<u64>,
    /// `gateway`: read deadline on forwarded requests in milliseconds.
    request_timeout_ms: Option<u64>,
    /// `analyze`/`scan`: where incremental session state lives.
    session_dir: Option<PathBuf>,
    /// `analyze`: replay unchanged programs from the session directory.
    incremental: bool,
    /// `serve`/`analyze --incremental`: byte budget on session state —
    /// warm in-memory sessions for `serve`, the on-disk replay store for
    /// `analyze`.  Evictions trade recomputation for memory, never output.
    max_session_bytes: Option<u64>,
    /// `serve`/`analyze --incremental`/`artifacts`: where the persistent
    /// prepared-artifact store lives.
    artifact_dir: Option<PathBuf>,
    /// `serve`/`artifacts`: byte budget on the artifact store, enforced by
    /// recency-based GC.
    max_store_bytes: Option<u64>,
    /// `serve`/`gateway`: append one NDJSON telemetry event per request
    /// to this file.
    trace_log: Option<PathBuf>,
    // `analyze`-only configuration knobs.
    baseline: bool,
    shadow: bool,
    merge_at_rollback: bool,
    unroll: bool,
}

fn usage() -> String {
    "usage: specan <analyze|compare|leaks|scan|merge|serve|gateway|submit|metrics|artifacts> <inputs...> \n\
     \x20      [--cache-lines N] [--json]\n\
     \n\
     analyze   run one configuration and print the per-access classification\n\
     \x20         [--baseline] [--no-shadow] [--merge-at-rollback] [--no-unroll]\n\
     \x20         [--jobs N] [--shard K/N] [--incremental [--session-dir DIR]\n\
     \x20         [--max-session-bytes N] [--artifact-dir DIR]];\n\
     \x20         several files allowed (JSON output becomes an array);\n\
     \x20         --incremental replays byte-identical output for programs\n\
     \x20         unchanged since the last run against the session directory\n\
     \x20         (default .specan-session; replayed output carries the\n\
     \x20         original run's timing fields)\n\
     compare   prepare once, run the standard configuration panel in parallel\n\
     \x20         [--jobs N] [--shard K/N]; several files allowed (JSON output\n\
     \x20         becomes the merged batch report)\n\
     leaks     side-channel verdict under the speculative analysis;\n\
     \x20         exits 1 when a leak is detected (CI-friendly)\n\
     scan      discover *.spec under the given files/directories, run the\n\
     \x20         panel per program sharded across worker processes and print\n\
     \x20         one merged deterministic report; exits 1 if any program\n\
     \x20         leaks.  [--jobs N] [--shard K/N] [--in-process]\n\
     \x20         [--panel <leak-check|comparison>] [--session-dir DIR];\n\
     \x20         with --session-dir only programs whose structural\n\
     \x20         fingerprints changed since the last scan are re-analysed\n\
     \x20         (the merged report stays bit-identical to a fresh scan)\n\
     merge     verified fan-in of sharded scan/compare artifacts: checks the\n\
     \x20         slices share one bundle checksum and tile it completely,\n\
     \x20         then prints the merged report; exits 1 if any program\n\
     \x20         leaks, 2 on incomplete/overlapping/mismatched slices\n\
     serve     run the persistent analysis service on --addr (default\n\
     \x20         127.0.0.1:4870) with a --jobs worker pool; programs are\n\
     \x20         kept warm in a shared fingerprint-keyed session cache;\n\
     \x20         --max-session-bytes N bounds that cache (least recently\n\
     \x20         used programs are evicted and re-prepared on their next\n\
     \x20         submission — responses never change);\n\
     \x20         --artifact-dir DIR persists prepared sessions on disk so\n\
     \x20         a restarted server answers from warm artifacts instead of\n\
     \x20         re-preparing (--max-store-bytes N bounds the store, GC by\n\
     \x20         recency — responses never change either way);\n\
     \x20         --trace-log FILE appends one NDJSON telemetry event per\n\
     \x20         request (phase timings, cache tier, fingerprint)\n\
     gateway   federate several running servers behind one endpoint: listens\n\
     \x20         on --addr (default 127.0.0.1:4871) and forwards every\n\
     \x20         request to one of the --backend H:P servers (repeatable,\n\
     \x20         at least one).  The same program routes to the same warm\n\
     \x20         backend (structural-fingerprint rendezvous hashing);\n\
     \x20         backends failing --eject-after consecutive probes/requests\n\
     \x20         (default 3) are ejected and readmitted on a healthy probe\n\
     \x20         (every --probe-interval-ms, default 500); a request that\n\
     \x20         dies in transport is transparently retried on the next\n\
     \x20         ring candidate (responses never change).  --jobs N bounds\n\
     \x20         concurrent forwards; --connect-timeout-ms (default 1000)\n\
     \x20         and --request-timeout-ms (default 120000) bound each hop;\n\
     \x20         --trace-log FILE appends one NDJSON routing event per\n\
     \x20         request (backend, attempts, reroutes)\n\
     submit    send <analyze|compare|scan|status|metrics|shutdown> to a running\n\
     \x20         server or gateway ([--addr H:P]); prints exactly what the\n\
     \x20         one-shot command would print and exits with its code.\n\
     \x20         [--connect-timeout-ms N] [--read-timeout-ms N] bound the\n\
     \x20         connection and each response wait (default: no deadline);\n\
     \x20         if the connection dies mid-pipeline, the ids of the lost\n\
     \x20         in-flight requests are reported and the exit code is 2\n\
     metrics   scrape a running server or gateway ([<addr>], default\n\
     \x20         127.0.0.1:4870): prints the Prometheus text exposition —\n\
     \x20         request/phase/cache-tier latency histograms for `serve`,\n\
     \x20         plus per-backend health and forwarding series (the fleet's\n\
     \x20         expositions relabeled under backend=\"H:P\") for `gateway`.\n\
     \x20         [--connect-timeout-ms N] [--read-timeout-ms N]\n\
     artifacts inspect a persistent artifact store: `list` prints one line\n\
     \x20         per artifact, `verify` fully validates every file (exit 0\n\
     \x20         iff all pass), `gc` removes quarantined/temp leftovers and\n\
     \x20         enforces --max-store-bytes.  Requires --artifact-dir DIR;\n\
     \x20         list/verify accept --json\n\
     worker    internal: --shard-json <spec|-> runs one scan shard and\n\
     \x20         prints its report as JSON (`-` reads the spec from stdin)"
        .to_string()
}

fn parse_shard(value: &str) -> Result<(usize, usize), String> {
    let err = || format!("`{value}` is not of the form K/N (e.g. 1/4)");
    let (k, n) = value.split_once('/').ok_or_else(err)?;
    let k: usize = k.parse().map_err(|_| err())?;
    let n: usize = n.parse().map_err(|_| err())?;
    if n == 0 || k == 0 || k > n {
        return Err(format!("--shard needs 1 <= K <= N, got {k}/{n}"));
    }
    Ok((k, n))
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut iter = args.iter().peekable();
    let command = match iter.next().map(String::as_str) {
        Some("analyze") => Command::Analyze,
        Some("compare") => Command::Compare,
        Some("leaks") => Command::Leaks,
        Some("scan") => Command::Scan,
        Some("merge") => Command::Merge,
        Some("serve") => Command::Serve,
        Some("gateway") => Command::Gateway,
        Some("artifacts") => Command::Artifacts,
        Some("worker") => Command::Worker,
        Some("--help" | "-h" | "help") | None => return Err(usage()),
        Some(other) => {
            return Err(format!("unrecognised command `{other}`\n{}", usage()));
        }
    };
    let mut cli = Cli {
        command,
        paths: Vec::new(),
        cache_lines: 512,
        json: false,
        jobs: None,
        shard: None,
        in_process: false,
        panel: PanelKind::Comparison,
        shard_json: None,
        addr: None,
        backends: Vec::new(),
        probe_interval_ms: None,
        eject_after: None,
        connect_timeout_ms: None,
        request_timeout_ms: None,
        session_dir: None,
        incremental: false,
        max_session_bytes: None,
        artifact_dir: None,
        max_store_bytes: None,
        trace_log: None,
        baseline: false,
        shadow: true,
        merge_at_rollback: false,
        unroll: true,
    };
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .ok_or_else(|| format!("{flag} needs a value"))
                .cloned()
        };
        match arg.as_str() {
            "--cache-lines"
                if matches!(
                    cli.command,
                    Command::Merge | Command::Serve | Command::Gateway | Command::Artifacts
                ) =>
            {
                return Err(format!("`--cache-lines` does not apply here\n{}", usage()));
            }
            "--cache-lines" => {
                let value = value_of("--cache-lines")?;
                cli.cache_lines = value
                    .parse()
                    .map_err(|_| format!("`{value}` is not a number"))?;
            }
            "--json" if matches!(cli.command, Command::Serve | Command::Gateway) => {
                return Err(format!("`--json` does not apply here\n{}", usage()));
            }
            "--json" => cli.json = true,
            "--addr" if !matches!(cli.command, Command::Serve | Command::Gateway) => {
                return Err(format!(
                    "`--addr` only applies to `serve` and `gateway` (and `submit`)\n{}",
                    usage()
                ));
            }
            "--addr" => cli.addr = Some(value_of("--addr")?),
            flag @ ("--backend"
            | "--probe-interval-ms"
            | "--eject-after"
            | "--connect-timeout-ms"
            | "--request-timeout-ms")
                if !matches!(cli.command, Command::Gateway) =>
            {
                return Err(format!("`{flag}` only applies to `gateway`\n{}", usage()));
            }
            "--backend" => cli.backends.push(value_of("--backend")?),
            "--probe-interval-ms" => {
                let value = value_of("--probe-interval-ms")?;
                cli.probe_interval_ms = Some(
                    value
                        .parse()
                        .map_err(|_| format!("`{value}` is not a millisecond count"))?,
                );
            }
            "--eject-after" => {
                let value = value_of("--eject-after")?;
                cli.eject_after = Some(
                    value
                        .parse()
                        .map_err(|_| format!("`{value}` is not a failure count"))?,
                );
            }
            "--connect-timeout-ms" => {
                let value = value_of("--connect-timeout-ms")?;
                cli.connect_timeout_ms = Some(
                    value
                        .parse()
                        .map_err(|_| format!("`{value}` is not a millisecond count"))?,
                );
            }
            "--request-timeout-ms" => {
                let value = value_of("--request-timeout-ms")?;
                cli.request_timeout_ms = Some(
                    value
                        .parse()
                        .map_err(|_| format!("`{value}` is not a millisecond count"))?,
                );
            }
            "--jobs"
                if matches!(
                    cli.command,
                    Command::Leaks | Command::Worker | Command::Merge | Command::Artifacts
                ) =>
            {
                return Err(format!("`--jobs` does not apply here\n{}", usage()));
            }
            "--jobs" => {
                let value = value_of("--jobs")?;
                cli.jobs = Some(
                    value
                        .parse()
                        .map_err(|_| format!("`{value}` is not a positive number"))?,
                );
            }
            "--shard"
                if !matches!(
                    cli.command,
                    Command::Analyze | Command::Compare | Command::Scan
                ) =>
            {
                return Err(format!("`--shard` does not apply here\n{}", usage()));
            }
            "--shard" => cli.shard = Some(parse_shard(&value_of("--shard")?)?),
            "--in-process" if !matches!(cli.command, Command::Scan) => {
                return Err(format!(
                    "`--in-process` only applies to `scan`\n{}",
                    usage()
                ));
            }
            "--in-process" => cli.in_process = true,
            "--panel" if !matches!(cli.command, Command::Scan) => {
                return Err(format!("`--panel` only applies to `scan`\n{}", usage()));
            }
            "--panel" => {
                let value = value_of("--panel")?;
                cli.panel = match value.as_str() {
                    "leak-check" => PanelKind::LeakCheck,
                    "comparison" => PanelKind::Comparison,
                    other => {
                        return Err(format!(
                            "unknown panel `{other}` (expected leak-check or comparison)"
                        ))
                    }
                };
            }
            "--shard-json" if !matches!(cli.command, Command::Worker) => {
                return Err(format!(
                    "`--shard-json` only applies to `worker`\n{}",
                    usage()
                ));
            }
            "--shard-json" => cli.shard_json = Some(value_of("--shard-json")?),
            "--session-dir" if !matches!(cli.command, Command::Analyze | Command::Scan) => {
                return Err(format!(
                    "`--session-dir` only applies to `analyze` and `scan`\n{}",
                    usage()
                ));
            }
            "--session-dir" => {
                cli.session_dir = Some(PathBuf::from(value_of("--session-dir")?));
            }
            "--incremental" if !matches!(cli.command, Command::Analyze) => {
                return Err(format!(
                    "`--incremental` only applies to `analyze` (for `scan`, \
                     `--session-dir` alone enables it)\n{}",
                    usage()
                ));
            }
            "--incremental" => cli.incremental = true,
            "--max-session-bytes" if !matches!(cli.command, Command::Serve | Command::Analyze) => {
                return Err(format!(
                    "`--max-session-bytes` only applies to `serve` and \
                     `analyze --incremental`\n{}",
                    usage()
                ));
            }
            "--max-session-bytes" => {
                let value = value_of("--max-session-bytes")?;
                cli.max_session_bytes = Some(
                    value
                        .parse()
                        .map_err(|_| format!("`{value}` is not a byte count"))?,
                );
            }
            "--artifact-dir"
                if !matches!(
                    cli.command,
                    Command::Serve | Command::Analyze | Command::Artifacts
                ) =>
            {
                return Err(format!(
                    "`--artifact-dir` only applies to `serve`, `analyze \
                     --incremental` and `artifacts`\n{}",
                    usage()
                ));
            }
            "--artifact-dir" => {
                cli.artifact_dir = Some(PathBuf::from(value_of("--artifact-dir")?));
            }
            "--max-store-bytes" if !matches!(cli.command, Command::Serve | Command::Artifacts) => {
                return Err(format!(
                    "`--max-store-bytes` only applies to `serve` and `artifacts gc`\n{}",
                    usage()
                ));
            }
            "--max-store-bytes" => {
                let value = value_of("--max-store-bytes")?;
                cli.max_store_bytes = Some(
                    value
                        .parse()
                        .map_err(|_| format!("`{value}` is not a byte count"))?,
                );
            }
            "--trace-log" if !matches!(cli.command, Command::Serve | Command::Gateway) => {
                return Err(format!(
                    "`--trace-log` only applies to `serve` and `gateway`\n{}",
                    usage()
                ));
            }
            "--trace-log" => {
                cli.trace_log = Some(PathBuf::from(value_of("--trace-log")?));
            }
            flag @ ("--baseline" | "--no-shadow" | "--merge-at-rollback" | "--no-unroll")
                if !matches!(cli.command, Command::Analyze) =>
            {
                return Err(format!("`{flag}` only applies to `analyze`\n{}", usage()));
            }
            "--baseline" => cli.baseline = true,
            "--no-shadow" => cli.shadow = false,
            "--merge-at-rollback" => cli.merge_at_rollback = true,
            "--no-unroll" => cli.unroll = false,
            "--help" | "-h" => return Err(usage()),
            other if !other.starts_with('-') => cli.paths.push(other.to_string()),
            other => return Err(format!("unrecognised argument `{other}`\n{}", usage())),
        }
    }
    match cli.command {
        Command::Worker => {
            if cli.shard_json.is_none() {
                return Err(format!("`worker` needs --shard-json\n{}", usage()));
            }
        }
        Command::Leaks => {
            if cli.paths.len() != 1 {
                return Err(format!(
                    "`leaks` takes exactly one <program.spec>\n{}",
                    usage()
                ));
            }
        }
        Command::Serve => {
            if !cli.paths.is_empty() {
                return Err(format!("`serve` takes no input files\n{}", usage()));
            }
        }
        Command::Gateway => {
            if !cli.paths.is_empty() {
                return Err(format!("`gateway` takes no input files\n{}", usage()));
            }
            if cli.backends.is_empty() {
                return Err(format!(
                    "`gateway` needs at least one `--backend H:P`\n{}",
                    usage()
                ));
            }
        }
        Command::Merge => {
            if cli.paths.is_empty() {
                return Err(format!("missing <report.json...>\n{}", usage()));
            }
        }
        Command::Artifacts => {
            let sub = cli.paths.first().map(String::as_str);
            if cli.paths.len() != 1 || !matches!(sub, Some("list" | "verify" | "gc")) {
                return Err(format!(
                    "`artifacts` takes exactly one of <list|verify|gc>\n{}",
                    usage()
                ));
            }
            if cli.artifact_dir.is_none() {
                return Err(format!(
                    "`artifacts` needs `--artifact-dir DIR`\n{}",
                    usage()
                ));
            }
            if cli.max_store_bytes.is_some() && sub != Some("gc") {
                return Err(format!(
                    "`artifacts --max-store-bytes` only applies to `gc`\n{}",
                    usage()
                ));
            }
        }
        Command::Analyze if cli.session_dir.is_some() && !cli.incremental => {
            return Err(format!(
                "`analyze --session-dir` needs `--incremental`\n{}",
                usage()
            ));
        }
        Command::Analyze if cli.artifact_dir.is_some() && !cli.incremental => {
            return Err(format!(
                "`analyze --artifact-dir` needs `--incremental` (it persists \
                 prepared sessions between runs)\n{}",
                usage()
            ));
        }
        Command::Analyze if cli.max_session_bytes.is_some() && !cli.incremental => {
            return Err(format!(
                "`analyze --max-session-bytes` needs `--incremental` (it bounds \
                 the replay store)\n{}",
                usage()
            ));
        }
        Command::Scan if cli.session_dir.is_some() && cli.shard.is_some() => {
            return Err(format!(
                "`scan` cannot combine `--shard` with `--session-dir`: an \
                 incremental session already skips unchanged programs, and a \
                 slice must not be stamped as a whole bundle\n{}",
                usage()
            ));
        }
        _ => {
            if cli.paths.is_empty() {
                return Err(format!("missing <program.spec>\n{}", usage()));
            }
        }
    }
    Ok(cli)
}

fn load_program(path: &str) -> Result<Program, String> {
    let source =
        std::fs::read_to_string(path).map_err(|err| format!("cannot read `{path}`: {err}"))?;
    parse_program(&source).map_err(|err| format!("cannot parse `{path}`: {err}"))
}

/// The `analyze` knobs of this invocation, in the shared service-layer
/// shape (one render path for the CLI and the server).
fn analyze_config(cli: &Cli) -> AnalyzeConfig {
    AnalyzeConfig {
        cache_lines: cli.cache_lines,
        json: cli.json,
        baseline: cli.baseline,
        shadow: cli.shadow,
        merge_at_rollback: cli.merge_at_rollback,
        unroll: cli.unroll,
    }
}

/// Expands the positional paths into the full sorted bundle plus the
/// `--shard K/N` slice range this machine works on.  An empty slice is
/// legal — a CI fleet may have more machines than programs — and the full
/// bundle stays visible so slice reports can be stamped against it.
fn select_bundle(cli: &Cli) -> Result<(Vec<PathBuf>, std::ops::Range<usize>), String> {
    let paths: Vec<PathBuf> = cli.paths.iter().map(PathBuf::from).collect();
    if !matches!(cli.command, Command::Scan) {
        if let Some(dir) = paths.iter().find(|p| p.is_dir()) {
            return Err(format!(
                "`{}` is a directory (only `scan` searches directories)",
                dir.display()
            ));
        }
    }
    let files = discover_programs(&paths).map_err(|err| err.to_string())?;
    // Machine K of N takes slice K of the same near-even contiguous split
    // the process-level sharding uses.
    let range = match cli.shard {
        Some((k, n)) => batch::shard_slice(files.len(), k, n),
        None => 0..files.len(),
    };
    Ok((files, range))
}

fn suite_analyzer(cli: &Cli) -> Analyzer {
    let mut analyzer = Analyzer::new();
    if let Some(jobs) = cli.jobs {
        analyzer = analyzer.max_suite_threads(jobs);
    }
    analyzer
}

/// `--jobs`, defaulting to the machine's parallelism.
fn effective_jobs(cli: &Cli) -> usize {
    cli.jobs
        .map(NonZeroUsize::get)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, NonZeroUsize::get))
}

/// One stderr accounting line naming the resolved parallelism, so a CI log
/// always shows what `--jobs` defaulted to on that machine.
fn echo_jobs(cli: &Cli, jobs: usize) {
    eprintln!(
        "jobs: {jobs}{}",
        if cli.jobs.is_some() {
            ""
        } else {
            " (auto-detected)"
        }
    );
}

/// `true` when the invocation addresses a bundle rather than one file —
/// several paths, or a `--shard` slice (whose size varies per machine, so
/// the output schema must not depend on it).
fn bundle_mode(cli: &Cli) -> bool {
    cli.paths.len() > 1 || cli.shard.is_some()
}

fn print_banner(cli: &Cli, program: &Program) {
    if !cli.json {
        outln!("{}", service::banner(program, cli.cache_lines));
    }
}

/// The configuration knobs that shape `analyze` output, rendered stably —
/// the replay key of the incremental session covers the program text *and*
/// this signature, so a flag change can never replay a stale rendering.
fn analyze_signature(cli: &Cli) -> String {
    format!(
        "json={};lines={};baseline={};shadow={};mar={};unroll={}",
        cli.json, cli.cache_lines, cli.baseline, cli.shadow, cli.merge_at_rollback, cli.unroll
    )
}

/// One `analyze` unit of work: its rendered output (text or JSON object),
/// replayed from `session` when the program is unchanged since the output
/// was stored, rendered through the shared service-layer path otherwise.
fn analyze_one(
    cli: &Cli,
    path: &std::path::Path,
    session: Option<&AnalyzeSession>,
    sessions: &CacheSession,
) -> Result<String, String> {
    let config = analyze_config(cli);
    config.options()?; // surface configuration errors before any analysis
    let program = load_program(&path.display().to_string())?;
    let key = session.map(|session| {
        let key = AnalyzeSession::key(&program, &analyze_signature(cli));
        (session, key)
    });
    if let Some((session, key)) = &key {
        if let Some(stored) = session.lookup(*key) {
            // Replayed byte-for-byte — including the original run's timing
            // fields, which a CI diff strips anyway.
            eprintln!("session: replayed `{}`", path.display());
            return Ok(stored);
        }
    }
    // The output replay missed (new program, or a flag change).  The
    // *prepared session* — which is flag-independent — may still be warm
    // in this run's shared front or, with `--artifact-dir`, on disk; an
    // acquire resolves the tiers in that order.  Acquires are name-exact
    // (`analyze` output embeds region and block names), so a renamed
    // program prepares cold and overwrites the artifact.
    let prepared = match sessions.acquire(&program) {
        CacheOutcome::L0Hit(prepared) | CacheOutcome::WarmHit(prepared) => prepared,
        CacheOutcome::StoreHit(prepared) => {
            eprintln!("artifacts: loaded `{}` from the store", path.display());
            prepared
        }
        CacheOutcome::NeedsPrepare(guard) => guard.prepare(&program),
    };
    let output = service::analyze_output(&prepared, &config)?;
    // Compositional-reuse accounting: when this preparation was seeded from
    // a donor (in-memory predecessor or the store's name index), say how
    // many block summaries were transplanted vs re-solved — the line CI
    // greps to prove an incremental edit did *not* redo the whole fixpoint.
    let stats = prepared.cache_stats();
    if stats.summary_hits > 0 || stats.summaries_invalidated > 0 {
        eprintln!(
            "session: summaries {}h/{}m ({} invalidated) `{}`",
            stats.summary_hits,
            stats.summary_misses,
            stats.summaries_invalidated,
            path.display()
        );
    }
    // Flush dirty entries *after* the run so a stored artifact carries the
    // memoized fixpoint rounds this configuration populated — the next run
    // (any flags) replays them from disk.  Writes are best-effort: a
    // failure only costs warmth, never the output.
    sessions.checkpoint();
    if let Some((session, key)) = key {
        eprintln!("session: analysed `{}`", path.display());
        if let Err(err) = session.store(key, &output) {
            // A failed store only costs the next replay; say so and go on.
            eprintln!(
                "session: warning: cannot store `{}` in {}: {err}",
                path.display(),
                session.dir().display()
            );
        }
    }
    Ok(output)
}

/// Runs `work` over every file, fanning out across at most `--jobs` scoped
/// threads, and returns the rendered outputs in input order.
fn map_files<F>(cli: &Cli, files: &[PathBuf], work: F) -> Result<Vec<String>, String>
where
    F: Fn(&PathBuf) -> Result<String, String> + Sync,
{
    let threads = effective_jobs(cli).min(files.len()).max(1);
    if threads == 1 {
        return files.iter().map(&work).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    let next = AtomicUsize::new(0);
    let slots: std::sync::Mutex<Vec<Option<Result<String, String>>>> =
        std::sync::Mutex::new(files.iter().map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(file) = files.get(index) else {
                    break;
                };
                let output = work(file);
                slots.lock().expect("analyze slots poisoned")[index] = Some(output);
            });
        }
    });
    slots
        .into_inner()
        .expect("analyze slots poisoned")
        .into_iter()
        .map(|slot| slot.expect("every file was analysed"))
        .collect()
}

/// Prints `analyze` outputs with the bundle-aware wrapping: a JSON array
/// in bundle mode (even for zero or one file, so the schema never depends
/// on how a bundle split across machines), plain concatenation otherwise.
/// Shared by the local and the `submit` execution paths.
fn print_analyze_outputs(cli: &Cli, outputs: &[String]) {
    if cli.json && bundle_mode(cli) {
        outln!("[");
        for (i, output) in outputs.iter().enumerate() {
            let comma = if i + 1 == outputs.len() { "" } else { "," };
            outln!("{}{comma}", output.trim_end());
        }
        outln!("]");
    } else {
        for (i, output) in outputs.iter().enumerate() {
            if i > 0 {
                outln!();
            }
            outln!("{output}");
        }
    }
}

fn cmd_analyze(cli: &Cli) -> Result<u8, String> {
    let (bundle, range) = select_bundle(cli)?;
    let files = bundle[range].to_vec();
    echo_jobs(cli, effective_jobs(cli));
    let session = cli.incremental.then(|| {
        let session = AnalyzeSession::new(
            cli.session_dir
                .clone()
                .unwrap_or_else(|| PathBuf::from(DEFAULT_SESSION_DIR)),
        );
        match cli.max_session_bytes {
            Some(bytes) => session.max_session_bytes(bytes),
            None => session,
        }
    });
    // One shared tier front for the whole bundle: a re-listed program is
    // served warm, and `--artifact-dir` attaches the on-disk tier below it.
    let mut cache = SessionCache::with_analyzer(Analyzer::new());
    if let Some(dir) = &cli.artifact_dir {
        cache = cache.artifact_store(PreparedStore::open(dir.clone()));
    }
    let sessions = CacheSession::new(cache);
    let outputs = map_files(cli, &files, |path| {
        analyze_one(cli, path, session.as_ref(), &sessions)
    })?;
    print_analyze_outputs(cli, &outputs);
    Ok(0)
}

fn cmd_compare(cli: &Cli) -> Result<u8, String> {
    let (bundle, range) = select_bundle(cli)?;
    echo_jobs(cli, effective_jobs(cli));
    if !bundle_mode(cli) {
        // A plain single-file invocation: the original timed report.  A
        // one-file `--shard` slice stays on the batch path below so every
        // machine of a CI matrix emits the same (mergeable) schema.
        let path = &bundle[0];
        let program = load_program(&path.display().to_string())?;
        let prepared = suite_analyzer(cli).prepare(&program);
        let output = service::compare_output(&prepared, cli.cache_lines, cli.json)?;
        outln!("{output}");
        return Ok(0);
    }
    // Bundle: the deterministic merged batch report, computed in-process
    // and stamped against the full bundle so per-machine artifacts can be
    // fan-in verified by `specan merge`.
    let panel = PanelSpec {
        kind: PanelKind::Comparison,
        cache_lines: cli.cache_lines,
    };
    let report = run_bundle_slice(
        &bundle,
        range,
        panel,
        effective_jobs(cli),
        &ExecMode::InProcess,
    )
    .map_err(|e| e.to_string())?;
    outln!("{}", service::scan_output(&report, cli.json));
    Ok(0)
}

fn cmd_leaks(cli: &Cli) -> Result<u8, String> {
    let program = load_program(&cli.paths[0])?;
    print_banner(cli, &program);
    let prepared = Analyzer::new().prepare(&program);
    let cache = CacheConfig::fully_associative(cli.cache_lines, 64);
    let baseline = AnalysisOptions::builder()
        .baseline()
        .cache(cache)
        .build()
        .map_err(|err| format!("invalid configuration: {err}"))?;
    let speculative = AnalysisOptions::builder()
        .cache(cache)
        .build()
        .map_err(|err| format!("invalid configuration: {err}"))?;
    let suite = prepared.run_suite(&[("baseline", baseline), ("speculative", speculative)]);
    let base_leaks = detect_leaks(&suite.runs[0].result);
    let spec_leaks = detect_leaks(&suite.runs[1].result);
    if cli.json {
        use spec_core::json;
        let mut findings = String::from("[");
        for (i, finding) in spec_leaks.findings.iter().enumerate() {
            if i > 0 {
                findings.push_str(", ");
            }
            findings.push_str(&format!(
                "{{\"region\": {}, \"inst_index\": {}, \"speculative_only\": {}}}",
                json::string(&finding.region),
                finding.inst_index,
                finding.speculative_only
            ));
        }
        findings.push(']');
        outln!(
            "{{\n  \"program\": {},\n  \"secret_accesses\": {},\n  \"baseline_leak\": {},\n  \
             \"speculative_leak\": {},\n  \"findings\": {}\n}}",
            json::string(&suite.program),
            spec_leaks.secret_accesses,
            base_leaks.leak_detected(),
            spec_leaks.leak_detected(),
            findings
        );
    } else {
        outln!("side-channel analysis of `{}`:", suite.program);
        outln!(
            "  baseline:    {}",
            if base_leaks.leak_detected() {
                "LEAK"
            } else {
                "leak-free"
            }
        );
        outln!(
            "  speculative: {}",
            if spec_leaks.leak_detected() {
                "LEAK"
            } else {
                "leak-free"
            }
        );
        for finding in &spec_leaks.findings {
            outln!(
                "  finding: {}[#{}]{}",
                finding.region,
                finding.inst_index,
                if finding.speculative_only {
                    "  (squashed execution only)"
                } else {
                    ""
                }
            );
        }
    }
    Ok(if spec_leaks.leak_detected() {
        EXIT_LEAK
    } else {
        0
    })
}

fn cmd_scan(cli: &Cli) -> Result<u8, String> {
    let (bundle, range) = select_bundle(cli)?;
    let panel = PanelSpec {
        kind: cli.panel,
        cache_lines: cli.cache_lines,
    };
    panel.configs().map_err(|err| err.to_string())?;
    let jobs = effective_jobs(cli);
    echo_jobs(cli, jobs);
    let report = match &cli.session_dir {
        Some(dir) => {
            // `--shard` is rejected with `--session-dir` at parse time, so
            // the slice is always the whole bundle here.  Incremental scans
            // always analyse in-process, through one shared session front:
            // misses are the exception, and worker subprocesses could not
            // share its warm tiers anyway.
            let session = ScanSession::new(dir);
            let outcome = scan_bundle_incremental(&bundle, panel, jobs, &session)
                .map_err(|err| err.to_string())?;
            eprintln!(
                "session: {} program(s) reused, {} analysed ({})",
                outcome.reused,
                outcome.analyzed,
                session.dir().display()
            );
            if let Some(err) = outcome.store_error {
                // Losing the warm start must not cost the leak verdict.
                eprintln!(
                    "session: warning: cannot persist session in {}: {err}",
                    session.dir().display()
                );
            }
            outcome.report
        }
        None => {
            let mode = if cli.in_process {
                ExecMode::InProcess
            } else {
                let worker_exe = std::env::current_exe()
                    .map_err(|err| format!("cannot locate the specan executable: {err}"))?;
                ExecMode::Subprocess { worker_exe }
            };
            run_bundle_slice(&bundle, range, panel, jobs, &mode).map_err(|err| err.to_string())?
        }
    };
    outln!("{}", service::scan_output(&report, cli.json));
    Ok(if report.any_leak() { EXIT_LEAK } else { 0 })
}

fn cmd_worker(cli: &Cli) -> Result<u8, String> {
    let spec_json = match cli.shard_json.as_deref().expect("validated by parse_args") {
        // `-` means stdin — the parent pipes the spec through it because a
        // large shard would not fit in an argv string.
        "-" => {
            use std::io::Read as _;
            let mut input = String::new();
            std::io::stdin()
                .read_to_string(&mut input)
                .map_err(|err| format!("cannot read the shard spec from stdin: {err}"))?;
            input
        }
        inline => inline.to_string(),
    };
    let spec = ShardSpec::from_json(&spec_json).map_err(|err| err.to_string())?;
    let report = run_shard(&spec).map_err(|err| err.to_string())?;
    outln!("{}", report.to_json());
    Ok(0)
}

/// `specan merge <reports.json...>`: the verified cross-machine fan-in of
/// sharded scan/compare artifacts.
fn cmd_merge(cli: &Cli) -> Result<u8, String> {
    let mut reports = Vec::with_capacity(cli.paths.len());
    for path in &cli.paths {
        let text =
            std::fs::read_to_string(path).map_err(|err| format!("cannot read `{path}`: {err}"))?;
        let report = BatchReport::from_json(&text).map_err(|err| format!("`{path}`: {err}"))?;
        if report.stamp.is_none() {
            return Err(format!(
                "`{path}` carries no bundle stamp: regenerate the artifact with \
                 this specan version (unstamped slices cannot be verified)"
            ));
        }
        reports.push(report);
    }
    let merged = BatchReport::merge(reports).map_err(|err| err.to_string())?;
    eprintln!(
        "merge: {} slice(s) verified, {} program(s), {} leaking",
        cli.paths.len(),
        merged.programs.len(),
        merged.leak_count()
    );
    outln!("{}", service::scan_output(&merged, cli.json));
    Ok(if merged.any_leak() { EXIT_LEAK } else { 0 })
}

/// `specan serve`: the persistent analysis service.
fn cmd_serve(cli: &Cli) -> Result<u8, String> {
    let addr = cli.addr.as_deref().unwrap_or(service::DEFAULT_ADDR);
    let listener =
        std::net::TcpListener::bind(addr).map_err(|err| format!("cannot bind `{addr}`: {err}"))?;
    let jobs = NonZeroUsize::new(effective_jobs(cli)).unwrap_or(NonZeroUsize::MIN);
    let local = listener
        .local_addr()
        .map_err(|err| format!("cannot resolve the bound address: {err}"))?;
    // First stderr line — it both scrapes cleanly (scripts read the port
    // of an `--addr 127.0.0.1:0` ephemeral bind from it) and doubles as
    // the resolved-`--jobs` accounting for `serve`.
    eprintln!(
        "serve: listening on {local} (jobs = {jobs}{}{}{})",
        if cli.jobs.is_some() {
            ""
        } else {
            ", auto-detected"
        },
        match cli.max_session_bytes {
            Some(bytes) => format!(", max-session-bytes = {bytes}"),
            None => String::new(),
        },
        match &cli.artifact_dir {
            Some(dir) => format!(", artifact-dir = {}", dir.display()),
            None => String::new(),
        }
    );
    let mut builder = ServiceConfig::builder(jobs);
    if let Some(bytes) = cli.max_session_bytes {
        builder = builder.max_session_bytes(bytes);
    }
    if let Some(dir) = &cli.artifact_dir {
        builder = builder.artifact_dir(dir.clone());
    }
    if let Some(bytes) = cli.max_store_bytes {
        builder = builder.max_store_bytes(bytes);
    }
    if let Some(path) = &cli.trace_log {
        builder = builder.trace_log(path.clone());
    }
    let config = builder.build().map_err(|err| err.to_string())?;
    let report =
        service::serve(listener, &config).map_err(|err| format!("service failed: {err}"))?;
    eprintln!(
        "serve: stopped after {} request(s), {} error(s)",
        report.requests, report.errors
    );
    Ok(0)
}

/// `specan gateway --backend H:P...`: the federation front — one endpoint
/// speaking the serve protocol, fanning requests out over a fleet of
/// backends with fingerprint-affinity routing and health-checked failover.
fn cmd_gateway(cli: &Cli) -> Result<u8, String> {
    let addr = cli.addr.as_deref().unwrap_or(gateway::DEFAULT_GATEWAY_ADDR);
    let listener =
        std::net::TcpListener::bind(addr).map_err(|err| format!("cannot bind `{addr}`: {err}"))?;
    let jobs = NonZeroUsize::new(effective_jobs(cli)).unwrap_or(NonZeroUsize::MIN);
    let local = listener
        .local_addr()
        .map_err(|err| format!("cannot resolve the bound address: {err}"))?;
    // First stderr line, scrapeable like `serve`'s: ephemeral-port scripts
    // read the bound address from it.
    eprintln!(
        "gateway: listening on {local} (backends = {}, jobs = {jobs}{})",
        cli.backends.len(),
        if cli.jobs.is_some() {
            ""
        } else {
            ", auto-detected"
        }
    );
    for backend in &cli.backends {
        eprintln!("gateway: backend {backend}");
    }
    let mut builder = GatewayConfig::builder(cli.backends.clone(), jobs);
    if let Some(ms) = cli.probe_interval_ms {
        builder = builder.probe_interval(std::time::Duration::from_millis(ms));
    }
    if let Some(failures) = cli.eject_after {
        builder = builder.eject_after(failures);
    }
    if let Some(ms) = cli.connect_timeout_ms {
        builder = builder.connect_timeout(std::time::Duration::from_millis(ms));
    }
    if let Some(ms) = cli.request_timeout_ms {
        builder = builder.request_read_timeout(Some(std::time::Duration::from_millis(ms)));
    }
    if let Some(path) = &cli.trace_log {
        builder = builder.trace_log(path.clone());
    }
    let config = builder.build().map_err(|err| err.to_string())?;
    let report =
        gateway::gateway(listener, &config).map_err(|err| format!("gateway failed: {err}"))?;
    eprintln!(
        "gateway: stopped after {} request(s), {} error(s)",
        report.requests, report.errors
    );
    Ok(0)
}

/// `specan artifacts <list|verify|gc> --artifact-dir DIR`: offline
/// inspection of a persistent artifact store.  `verify` runs every file
/// through the complete serve-path validation chain (header, checksum,
/// options signature, full payload decode) without mutating the store, and
/// exits 0 iff every artifact passes — the restart gate's proof that what
/// is on disk is what a restarted server will load.
fn cmd_artifacts(cli: &Cli) -> Result<u8, String> {
    let dir = cli.artifact_dir.as_ref().expect("validated by parse_args");
    let mut store = PreparedStore::open(dir.clone());
    if let Some(bytes) = cli.max_store_bytes {
        store = store.max_store_bytes(bytes);
    }
    match cli.paths[0].as_str() {
        "list" => {
            let entries = store
                .store()
                .entries()
                .map_err(|err| format!("cannot list `{}`: {err}", dir.display()))?;
            if cli.json {
                let mut out = String::from("[");
                for (i, entry) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!(
                        "{{\"fingerprint\": \"{:016x}\", \"file_bytes\": {}}}",
                        entry.fingerprint, entry.file_bytes
                    ));
                }
                out.push(']');
                outln!("{out}");
            } else {
                for entry in &entries {
                    outln!("{:016x}  {:>12} bytes", entry.fingerprint, entry.file_bytes);
                }
                outln!(
                    "{} artifact(s), {} bytes",
                    entries.len(),
                    entries.iter().map(|e| e.file_bytes).sum::<u64>()
                );
            }
            Ok(0)
        }
        "verify" => {
            let rows = store
                .verify(&Analyzer::new())
                .map_err(|err| format!("cannot verify `{}`: {err}", dir.display()))?;
            let failed = rows.iter().filter(|(_, r)| r.is_err()).count();
            if cli.json {
                let mut out = String::from("[");
                for (i, (fingerprint, result)) in rows.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&match result {
                        Ok(bytes) => format!(
                            "{{\"fingerprint\": \"{fingerprint:016x}\", \"ok\": true, \
                             \"payload_bytes\": {bytes}}}"
                        ),
                        Err(reason) => format!(
                            "{{\"fingerprint\": \"{fingerprint:016x}\", \"ok\": false, \
                             \"error\": {}}}",
                            spec_core::json::string(reason)
                        ),
                    });
                }
                out.push(']');
                outln!("{out}");
            } else {
                for (fingerprint, result) in &rows {
                    match result {
                        Ok(bytes) => outln!("{fingerprint:016x}  ok ({bytes} payload bytes)"),
                        Err(reason) => outln!("{fingerprint:016x}  FAILED: {reason}"),
                    }
                }
                outln!("{} artifact(s) verified, {} failed", rows.len(), failed);
            }
            Ok(if failed > 0 { EXIT_ERROR } else { 0 })
        }
        "gc" => {
            let stats = store
                .store()
                .gc()
                .map_err(|err| format!("cannot gc `{}`: {err}", dir.display()))?;
            outln!(
                "gc: {} artifact(s) evicted, {} leftover(s) removed, {} bytes remain",
                stats.evicted,
                stats.junk_removed,
                stats.remaining_bytes
            );
            Ok(0)
        }
        _ => unreachable!("validated by parse_args"),
    }
}

/// `specan submit [--addr H:P] <analyze|compare|scan|status|shutdown> ...`:
/// run a command against a running server, printing exactly what the
/// one-shot invocation would print and exiting with its code.
fn cmd_submit(args: &[String]) -> Result<u8, String> {
    // Peel off `--addr` and the connection deadlines wherever they appear;
    // everything else re-parses through the normal grammar, so submit
    // accepts the same flags.
    let mut addr = service::DEFAULT_ADDR.to_string();
    let mut options = ClientOptions::default();
    let mut rest: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .ok_or_else(|| format!("{flag} needs a value"))
                .cloned()
        };
        let millis = |flag: &str, value: String| {
            value
                .parse()
                .map(std::time::Duration::from_millis)
                .map_err(|_| format!("`{value}` is not a millisecond count ({flag})"))
        };
        match arg.as_str() {
            "--addr" => addr = value_of("--addr")?,
            "--connect-timeout-ms" => {
                let value = value_of("--connect-timeout-ms")?;
                options.connect_timeout = Some(millis("--connect-timeout-ms", value)?);
            }
            "--read-timeout-ms" => {
                let value = value_of("--read-timeout-ms")?;
                options.read_timeout = Some(millis("--read-timeout-ms", value)?);
            }
            _ => rest.push(arg.clone()),
        }
    }
    let connect = || {
        ServiceClient::connect_with(&addr, options)
            .map_err(|err| format!("cannot connect to a specan server at `{addr}`: {err}"))
    };
    // status/metrics/shutdown have no flags or files of their own.
    if let Some(cmd @ ("status" | "metrics" | "shutdown")) = rest.first().map(String::as_str) {
        if rest.len() != 1 {
            return Err(format!("`submit {cmd}` takes no further arguments"));
        }
        let request = match cmd {
            "status" => Request::Status,
            "metrics" => Request::Metrics,
            _ => Request::Shutdown,
        };
        let response = connect()?
            .call(&request)
            .map_err(|err| format!("request failed: {err}"))?;
        return match response.error {
            None => {
                outln!("{}", response.output);
                Ok(response.exit)
            }
            Some(message) => Err(format!("server error: {message}")),
        };
    }
    let cli = parse_args(&rest)?;
    if !matches!(
        cli.command,
        Command::Analyze | Command::Compare | Command::Scan
    ) {
        return Err(format!(
            "`submit` supports analyze, compare, scan, status, metrics and shutdown\n{}",
            usage()
        ));
    }
    if cli.shard.is_some() {
        return Err(
            "`--shard` does not apply over the wire: shard locally and fan the \
             artifacts in with `specan merge`"
                .to_string(),
        );
    }
    if cli.incremental || cli.session_dir.is_some() {
        return Err(
            "sessions live inside the server: drop `--incremental`/`--session-dir`".to_string(),
        );
    }
    if cli.jobs.is_some() {
        return Err("`--jobs` is the server's knob (`specan serve --jobs N`)".to_string());
    }
    if cli.in_process {
        return Err("`--in-process` does not apply over the wire".to_string());
    }
    let (bundle, range) = select_bundle(&cli)?;
    let files = bundle[range].to_vec();
    let read_source = |path: &PathBuf| {
        std::fs::read_to_string(path)
            .map_err(|err| format!("cannot read `{}`: {err}", path.display()))
    };
    let mut client = connect()?;
    let fail = |response: &spec_core::service::Response| {
        format!(
            "server error: {}",
            response.error.as_deref().unwrap_or("unknown failure")
        )
    };
    match cli.command {
        Command::Analyze => {
            // Pipeline one request per file; reorder responses by id.
            let config = analyze_config(&cli);
            let mut ids = Vec::with_capacity(files.len());
            for path in &files {
                let request = Request::Analyze {
                    source: read_source(path)?,
                    config,
                };
                ids.push(client.send(&request).map_err(|err| err.to_string())?);
            }
            let mut by_id = std::collections::HashMap::new();
            for _ in &ids {
                let response = match client.recv() {
                    Ok(response) => response,
                    Err(err) => {
                        // The connection died mid-pipeline.  Name exactly
                        // which in-flight requests never got an answer —
                        // "backend died" must be distinguishable from any
                        // analysis verdict, and the caller needs to know
                        // what to resubmit.
                        let lost: Vec<(u64, &PathBuf)> = ids
                            .iter()
                            .zip(&files)
                            .filter(|(id, _)| !by_id.contains_key(&Some(**id)))
                            .map(|(id, path)| (*id, path))
                            .collect();
                        for (id, path) in &lost {
                            eprintln!("submit: lost request {id} (`{}`)", path.display());
                        }
                        return Err(format!(
                            "connection to `{addr}` died mid-pipeline ({err}): {} of {} \
                             response(s) never arrived (lost request id(s): {})",
                            lost.len(),
                            ids.len(),
                            lost.iter()
                                .map(|(id, _)| id.to_string())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ));
                    }
                };
                by_id.insert(response.id, response);
            }
            let mut outputs = Vec::with_capacity(ids.len());
            for id in ids {
                let response = by_id
                    .remove(&Some(id))
                    .ok_or_else(|| format!("server never answered request {id}"))?;
                if !response.ok {
                    return Err(fail(&response));
                }
                outputs.push(response.output);
            }
            print_analyze_outputs(&cli, &outputs);
            Ok(0)
        }
        Command::Compare if !bundle_mode(&cli) => {
            let response = client
                .call(&Request::Compare {
                    source: read_source(&files[0])?,
                    cache_lines: cli.cache_lines,
                    json: cli.json,
                })
                .map_err(|err| err.to_string())?;
            if !response.ok {
                return Err(fail(&response));
            }
            outln!("{}", response.output);
            Ok(0)
        }
        Command::Compare | Command::Scan => {
            // A compare bundle is a scan under the comparison panel (same
            // report, exit 0 regardless of leaks — compare never gates).
            let panel = PanelSpec {
                kind: if matches!(cli.command, Command::Scan) {
                    cli.panel
                } else {
                    PanelKind::Comparison
                },
                cache_lines: cli.cache_lines,
            };
            let sources = files
                .iter()
                .map(read_source)
                .collect::<Result<Vec<_>, _>>()?;
            let response = client
                .call(&Request::Scan {
                    sources,
                    panel,
                    json: cli.json,
                })
                .map_err(|err| err.to_string())?;
            if !response.ok {
                return Err(fail(&response));
            }
            outln!("{}", response.output);
            Ok(if matches!(cli.command, Command::Scan) {
                response.exit
            } else {
                0
            })
        }
        _ => unreachable!("gated above"),
    }
}

/// `specan metrics [<addr>]`: scrape the Prometheus text exposition of a
/// running server or gateway and print it verbatim.
fn cmd_metrics(args: &[String]) -> Result<u8, String> {
    let mut addr: Option<String> = None;
    let mut options = ClientOptions::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .ok_or_else(|| format!("{flag} needs a value"))
                .cloned()
        };
        let millis = |flag: &str, value: String| {
            value
                .parse()
                .map(std::time::Duration::from_millis)
                .map_err(|_| format!("`{value}` is not a millisecond count ({flag})"))
        };
        match arg.as_str() {
            "--connect-timeout-ms" => {
                let value = value_of("--connect-timeout-ms")?;
                options.connect_timeout = Some(millis("--connect-timeout-ms", value)?);
            }
            "--read-timeout-ms" => {
                let value = value_of("--read-timeout-ms")?;
                options.read_timeout = Some(millis("--read-timeout-ms", value)?);
            }
            "--help" | "-h" => return Err(usage()),
            other if !other.starts_with('-') && addr.is_none() => {
                addr = Some(other.to_string());
            }
            other => return Err(format!("unrecognised argument `{other}`\n{}", usage())),
        }
    }
    let addr = addr.unwrap_or_else(|| service::DEFAULT_ADDR.to_string());
    let response = ServiceClient::connect_with(&addr, options)
        .map_err(|err| format!("cannot connect to a specan server at `{addr}`: {err}"))?
        .call(&Request::Metrics)
        .map_err(|err| format!("request failed: {err}"))?;
    match response.error {
        None => {
            outln!("{}", response.output);
            Ok(response.exit)
        }
        Some(message) => Err(format!("server error: {message}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `submit` wraps another command, so it owns its own argument handling.
    if args.first().map(String::as_str) == Some("submit") {
        return match cmd_submit(&args[1..]) {
            Ok(code) => ExitCode::from(code),
            Err(message) => {
                eprintln!("{message}");
                ExitCode::from(EXIT_ERROR)
            }
        };
    }
    // `metrics` takes a positional address, not input files.
    if args.first().map(String::as_str) == Some("metrics") {
        return match cmd_metrics(&args[1..]) {
            Ok(code) => ExitCode::from(code),
            Err(message) => {
                eprintln!("{message}");
                ExitCode::from(EXIT_ERROR)
            }
        };
    }
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(EXIT_ERROR);
        }
    };
    let outcome = match cli.command {
        Command::Analyze => cmd_analyze(&cli),
        Command::Compare => cmd_compare(&cli),
        Command::Leaks => cmd_leaks(&cli),
        Command::Scan => cmd_scan(&cli),
        Command::Merge => cmd_merge(&cli),
        Command::Serve => cmd_serve(&cli),
        Command::Gateway => cmd_gateway(&cli),
        Command::Artifacts => cmd_artifacts(&cli),
        Command::Worker => cmd_worker(&cli),
    };
    match outcome {
        Ok(code) => ExitCode::from(code),
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(EXIT_ERROR)
        }
    }
}
