//! # speculative-absint
//!
//! A Rust reproduction of *Abstract Interpretation under Speculative
//! Execution* (Wu & Wang, PLDI 2019): a must-hit cache analysis that stays
//! sound when the processor speculatively executes mispredicted branch
//! paths, applied to worst-case execution-time estimation and cache timing
//! side-channel detection.
//!
//! This crate is a thin facade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`ir`] | `spec-ir` | the program representation and CFG utilities |
//! | [`cache`] | `spec-cache` | concrete and abstract cache models |
//! | [`absint`] | `spec-absint` | the generic fixpoint framework |
//! | [`vcfg`] | `spec-vcfg` | virtual control flow (speculation sites) |
//! | [`core`] | `spec-core` | the speculative must-hit analysis |
//! | [`sim`] | `spec-sim` | the concrete speculative-execution simulator |
//! | [`analysis`] | `spec-analysis` | WCET estimation and leak detection |
//! | [`workloads`] | `spec-workloads` | the synthetic evaluation suites |
//!
//! ## Example
//!
//! Prepare a program once, then run many configurations against the shared
//! artifacts (see [`core::session`] for the full session API):
//!
//! ```rust
//! use speculative_absint::core::{AnalysisOptions, Analyzer};
//! use speculative_absint::cache::CacheConfig;
//! use speculative_absint::workloads::figure2_program;
//!
//! let cache = CacheConfig::fully_associative(16, 64);
//! let program = figure2_program(16);
//! let prepared = Analyzer::new().prepare(&program);
//! let suite = prepared.run_suite(&[
//!     ("baseline", AnalysisOptions::builder().baseline().cache(cache).build().unwrap()),
//!     ("speculative", AnalysisOptions::builder().cache(cache).build().unwrap()),
//! ]);
//! assert!(
//!     suite.get("speculative").unwrap().result.miss_count()
//!         > suite.get("baseline").unwrap().result.miss_count()
//! );
//! println!("{}", suite.report().to_json());
//! ```

pub use spec_absint as absint;
pub use spec_analysis as analysis;
pub use spec_cache as cache;
pub use spec_core as core;
pub use spec_ir as ir;
pub use spec_sim as sim;
pub use spec_vcfg as vcfg;
pub use spec_workloads as workloads;
