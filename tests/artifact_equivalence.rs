//! Artifact-equivalence property suite: the persistent store must be
//! invisible in results and harmless when corrupted.
//!
//! Random programs are driven through three layers:
//!
//! * [`PreparedStore`] directly: a save/load round trip must reproduce the
//!   cold session's suite report byte-for-byte (post timing-strip), with
//!   the memoized fixpoint rounds replayed rather than recomputed;
//! * a live `specan serve --artifact-dir` process that is **hard-killed**
//!   (no shutdown handshake) and restarted over the same directory: the
//!   second life must answer byte-identically from disk-loaded artifacts;
//! * corrupted stores: truncations, flipped payload bytes, stale format
//!   versions and mismatched header fields must all fall back to a clean
//!   cold prepare — never a panic, never a stale answer — with the
//!   offending file quarantined, and `specan artifacts verify`/`gc` must
//!   surface and sweep the damage.
//!
//! Like the other property suites, the generator is a deterministic
//! xorshift PRNG, so a failure reproduces from the printed case number.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use spec_bench::service_harness::{
    random_program_text, strip_analyze_timing, Rng, Scratch, ServeProcess,
};
use speculative_absint::cache::CacheConfig;
use speculative_absint::core::cache_session::{CacheOutcome, CacheSession};
use speculative_absint::core::incremental::SessionCache;
use speculative_absint::core::session::{comparison_configs, Analyzer};
use speculative_absint::core::PreparedStore;
use speculative_absint::ir::fingerprint::program_fingerprint;
use speculative_absint::ir::text::parse_program;
use speculative_absint::ir::Program;

const CASES: u64 = 4;

fn cache() -> CacheConfig {
    CacheConfig::fully_associative(8, 64)
}

/// Runs the comparison panel and renders the stripped reference report:
/// what any session — cold, loaded, or recovered from corruption — must
/// reproduce exactly.
fn panel_report(prepared: &speculative_absint::core::PreparedProgram) -> String {
    prepared
        .run_suite(&comparison_configs(cache()))
        .report()
        .without_timing()
        .to_json()
}

fn parse(source: &str) -> Program {
    parse_program(source).expect("generated programs parse")
}

// ---------------------------------------------------------------------------
// Store layer: save/load round trips.
// ---------------------------------------------------------------------------

#[test]
fn store_round_trips_reproduce_cold_reports_bit_for_bit() {
    let scratch = Scratch::new("specan-artifact-roundtrip");
    let analyzer = Analyzer::new();
    let store = PreparedStore::open(scratch.dir());
    let mut rng = Rng::new(0xa21f_ac75);

    for case in 0..CASES {
        let program = parse(&random_program_text(&mut rng, &format!("rt{case}")));
        let prepared = analyzer.prepare(&program);
        let expected = panel_report(&prepared);

        let written = store.save(&prepared).expect("artifact saves");
        assert!(written > 0, "case {case}: artifacts are not empty");
        let (restored, loaded) = store
            .load(&analyzer, program_fingerprint(&program))
            .expect("a just-saved artifact loads");
        // `save` reports header + payload; `load` reports the payload the
        // counters account for.  The difference is the fixed 44-byte header.
        assert_eq!(
            written,
            loaded + 44,
            "case {case}: loaded bytes match written"
        );
        assert_eq!(
            restored.program(),
            &program,
            "case {case}: the restored program is structurally identical"
        );

        assert_eq!(
            panel_report(&restored),
            expected,
            "case {case}: a loaded session must reproduce the cold report"
        );
        // The panel above ran entirely from the artifact's memoized rounds:
        // a restored store is warm, not merely correct.
        assert_eq!(
            restored.cache_stats().round_misses,
            0,
            "case {case}: memoized fixpoint rounds survive the round trip"
        );
    }
}

// ---------------------------------------------------------------------------
// Corruption robustness: every damaged file falls back to a cold prepare.
// ---------------------------------------------------------------------------

/// The on-disk path of `fingerprint`'s artifact inside `dir`.
fn artifact_path(dir: &Path, fingerprint: u64) -> PathBuf {
    dir.join(format!("{fingerprint:016x}.artifact"))
}

/// Applies `mutate` to the raw bytes of `path` and writes them back.
fn corrupt(path: &Path, mutate: impl FnOnce(&mut Vec<u8>)) {
    let mut bytes = std::fs::read(path).expect("artifact file reads");
    mutate(&mut bytes);
    std::fs::write(path, bytes).expect("corrupted artifact writes");
}

/// A named corruption: the label and the byte mutation it applies.
type Corruption = (&'static str, Box<dyn FnOnce(&mut Vec<u8>)>);

#[test]
fn corrupted_artifacts_fall_back_to_cold_prepare_and_quarantine() {
    // One corruption scenario per (label, mutation) — each exercises a
    // distinct rejection path in the header/checksum validation chain.
    let scenarios: Vec<Corruption> = vec![
        (
            "truncated-header",
            Box::new(|b: &mut Vec<u8>| b.truncate(20)),
        ),
        (
            "truncated-payload",
            Box::new(|b: &mut Vec<u8>| {
                let keep = 44 + (b.len() - 44) / 2;
                b.truncate(keep);
            }),
        ),
        (
            "flipped-payload-byte",
            Box::new(|b: &mut Vec<u8>| {
                let last = b.len() - 1;
                b[last] ^= 0xff;
            }),
        ),
        (
            "stale-format-version",
            Box::new(|b: &mut Vec<u8>| b[8..12].copy_from_slice(&99u32.to_le_bytes())),
        ),
        (
            "mismatched-fingerprint",
            Box::new(|b: &mut Vec<u8>| b[12] ^= 0xff),
        ),
        (
            "mismatched-signature",
            Box::new(|b: &mut Vec<u8>| b[20] ^= 0xff),
        ),
        ("bad-magic", Box::new(|b: &mut Vec<u8>| b[0] ^= 0xff)),
    ];

    let scratch = Scratch::new("specan-artifact-corruption");
    let analyzer = Analyzer::new();
    let mut rng = Rng::new(0xc0de_dead);

    for (label, mutation) in scenarios {
        let dir = scratch.dir().join(label);
        let store = PreparedStore::open(&dir);
        let program = parse(&random_program_text(&mut rng, label));
        let fingerprint = program_fingerprint(&program);

        // Write a valid artifact, then damage it.
        let prepared = analyzer.prepare(&program);
        let expected = panel_report(&prepared);
        store.save(&prepared).expect("artifact saves");
        let path = artifact_path(&dir, fingerprint.0);
        corrupt(&path, mutation);

        // The direct load must refuse cleanly and quarantine the file.
        assert!(
            store.load(&analyzer, fingerprint).is_none(),
            "{label}: a corrupted artifact must not load"
        );
        assert!(!path.exists(), "{label}: the damaged file is quarantined");
        let rejected: Vec<_> = std::fs::read_dir(&dir)
            .expect("store dir lists")
            .filter_map(|e| e.ok())
            .filter(|e| e.path().to_string_lossy().ends_with(".rejected"))
            .collect();
        assert_eq!(rejected.len(), 1, "{label}: exactly one quarantined file");

        // A session front over the damaged store falls back to a cold
        // prepare — same report as ever — and the commit's write-through
        // heals the store.
        let session =
            CacheSession::new(SessionCache::new().artifact_store(PreparedStore::open(&dir)));
        let guard = match session.acquire(&program) {
            CacheOutcome::NeedsPrepare(guard) => guard,
            other => panic!(
                "{label}: nothing loadable remains after quarantine, got `{}`",
                other.tag()
            ),
        };
        let prepared = guard.prepare(&program);
        assert_eq!(
            panel_report(&prepared),
            expected,
            "{label}: the cold fallback must reproduce the reference report"
        );
        let stats = session.stats();
        assert_eq!(stats.store_hits, 0, "{label}: no hit came from the store");
        assert!(stats.store_misses >= 1, "{label}: the miss was counted");

        // The cold prepare was written back when the guard committed: a
        // fresh session now restores from disk again.
        let healed =
            CacheSession::new(SessionCache::new().artifact_store(PreparedStore::open(&dir)));
        match healed.acquire(&program) {
            CacheOutcome::StoreHit(_) => {}
            other => panic!("{label}: healed via the store, got `{}`", other.tag()),
        };
    }
}

// ---------------------------------------------------------------------------
// Service layer: hard-kill and restart over the same artifact directory.
// ---------------------------------------------------------------------------

fn specan(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_specan"))
        .args(args)
        .output()
        .expect("specan runs")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).unwrap()
}

fn submit(server: &ServeProcess, args: &[&str]) -> Output {
    let mut full = vec!["submit", "--addr", server.addr()];
    full.extend_from_slice(args);
    specan(&full)
}

/// Extracts the integer following `"key": ` in a JSON status blob.
fn status_counter(status: &str, key: &str) -> u64 {
    status
        .split(&format!("\"{key}\": "))
        .nth(1)
        .and_then(|rest| rest.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|digits| digits.parse().ok())
        .unwrap_or_else(|| panic!("status reports {key}: {status}"))
}

#[test]
fn killed_and_restarted_server_answers_byte_identically_from_the_store() {
    let specan_bin = Path::new(env!("CARGO_BIN_EXE_specan"));
    let scratch = Scratch::new("specan-artifact-restart");
    let artifact_dir = scratch.dir().join("artifacts");
    let artifact_dir_str = artifact_dir.to_str().unwrap().to_string();
    let mut rng = Rng::new(0x5708_e001);

    let mut paths = Vec::new();
    for i in 0..4 {
        let name = format!("life{i}");
        let path = scratch.write(
            &format!("{name}.spec"),
            &random_program_text(&mut rng, &name),
        );
        paths.push(path);
    }

    // Life 1: a cold server fills the store as it prepares.
    let mut life1 =
        ServeProcess::start_with_args(specan_bin, 2, &["--artifact-dir", &artifact_dir_str]);
    let mut first_life = Vec::new();
    for (i, path) in paths.iter().enumerate() {
        let out = submit(
            &life1,
            &[
                "analyze",
                path.to_str().unwrap(),
                "--cache-lines",
                "8",
                "--json",
            ],
        );
        assert_eq!(
            out.status.code(),
            Some(0),
            "life 1 program {i}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        first_life.push(stdout_of(&out));
    }
    let status = stdout_of(&submit(&life1, &["status"]));
    assert_eq!(
        status_counter(&status, "store_hits"),
        0,
        "the first life prepared everything cold"
    );
    // No shutdown handshake: the server dies as if the machine went down.
    life1.kill();

    // The store survives the dead process and verifies clean.
    let verify = specan(&["artifacts", "verify", "--artifact-dir", &artifact_dir_str]);
    assert_eq!(
        verify.status.code(),
        Some(0),
        "artifacts verify after the kill: {}",
        String::from_utf8_lossy(&verify.stderr)
    );

    // Life 2: a fresh server over the same directory answers every request
    // from disk — byte-identically, with the hits on the record.
    let mut life2 =
        ServeProcess::start_with_args(specan_bin, 2, &["--artifact-dir", &artifact_dir_str]);
    for (i, path) in paths.iter().enumerate() {
        let out = submit(
            &life2,
            &[
                "analyze",
                path.to_str().unwrap(),
                "--cache-lines",
                "8",
                "--json",
            ],
        );
        assert_eq!(out.status.code(), Some(0), "life 2 program {i}");
        assert_eq!(
            strip_analyze_timing(&stdout_of(&out)),
            strip_analyze_timing(&first_life[i]),
            "life 2 program {i}: the restart must be invisible"
        );
    }
    let status = stdout_of(&submit(&life2, &["status"]));
    assert_eq!(
        status_counter(&status, "store_hits"),
        paths.len() as u64,
        "every second-life request was served from the store: {status}"
    );
    assert!(
        status_counter(&status, "store_loaded_bytes") > 0,
        "the loads moved real bytes: {status}"
    );
    life2.shutdown();
}

// ---------------------------------------------------------------------------
// CLI layer: `specan artifacts verify` and `gc` against a damaged store.
// ---------------------------------------------------------------------------

#[test]
fn artifacts_verify_flags_corruption_and_gc_sweeps_the_quarantine() {
    let scratch = Scratch::new("specan-artifact-cli");
    let artifact_dir = scratch.dir().join("artifacts");
    let artifact_dir_str = artifact_dir.to_str().unwrap().to_string();
    let mut rng = Rng::new(0x6c1e_a11b);
    let source = random_program_text(&mut rng, "clip");
    let spec = scratch.write("clip.spec", &source);
    let spec_str = spec.to_str().unwrap();

    // Populate the store through the CLI's own incremental path.  Each
    // call gets a fresh output-session directory so the output replay
    // never short-circuits the artifact-store path under test.
    let analyze = |label: &str| {
        let session_dir = scratch.dir().join(format!("session-{label}"));
        let out = specan(&[
            "analyze",
            spec_str,
            "--incremental",
            "--session-dir",
            session_dir.to_str().unwrap(),
            "--artifact-dir",
            &artifact_dir_str,
            "--cache-lines",
            "8",
            "--json",
        ]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "analyze ({label}): {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out
    };
    let cold = analyze("cold");
    let verify = specan(&["artifacts", "verify", "--artifact-dir", &artifact_dir_str]);
    assert_eq!(
        verify.status.code(),
        Some(0),
        "a fresh store verifies clean"
    );

    // Damage the artifact: verify must fail loudly without quarantining.
    let fingerprint = program_fingerprint(&parse(&source));
    let path = artifact_path(&artifact_dir, fingerprint.0);
    corrupt(&path, |b| {
        let last = b.len() - 1;
        b[last] ^= 0xff;
    });
    let verify = specan(&["artifacts", "verify", "--artifact-dir", &artifact_dir_str]);
    assert_eq!(
        verify.status.code(),
        Some(2),
        "a corrupted store fails verification: {}",
        stdout_of(&verify)
    );
    assert!(path.exists(), "verify is read-only: no quarantine");

    // The analyze path recovers: cold fallback, identical output.  The
    // damaged file is quarantined on load, then the save-through both
    // heals the store and (via the gc pass every save runs) sweeps the
    // quarantine in the same breath.
    let recovered = analyze("recovered");
    assert_eq!(
        strip_analyze_timing(&stdout_of(&recovered)),
        strip_analyze_timing(&stdout_of(&cold)),
        "corruption must be invisible in analyze output"
    );
    let rejected_count = || {
        std::fs::read_dir(&artifact_dir)
            .expect("store dir lists")
            .filter_map(|e| e.ok())
            .filter(|e| e.path().to_string_lossy().ends_with(".rejected"))
            .count()
    };
    assert_eq!(
        rejected_count(),
        0,
        "the save-through's gc swept the quarantine"
    );
    assert!(path.exists(), "the store was healed by the write-through");

    // A stray quarantine file (say, from a process that died mid-recovery)
    // is `artifacts gc`'s job to sweep.
    std::fs::write(
        artifact_dir.join("00000000deadbeef.artifact.rejected"),
        b"leftover",
    )
    .expect("stray rejected file writes");
    assert_eq!(rejected_count(), 1);
    let gc = specan(&["artifacts", "gc", "--artifact-dir", &artifact_dir_str]);
    assert_eq!(gc.status.code(), Some(0), "gc runs");
    assert_eq!(rejected_count(), 0, "gc removed the quarantined file");
    let verify = specan(&["artifacts", "verify", "--artifact-dir", &artifact_dir_str]);
    assert_eq!(verify.status.code(), Some(0), "the healed store verifies");
}
