//! End-to-end tests of the batch layer through the `specan` binary: the
//! `scan` and `worker` subcommands, subprocess sharding, merged-report
//! determinism and the bundle flags on `analyze`/`compare`.

use std::process::{Command, Output};

const PROGRAMS_DIR: &str = "examples/programs";
const VICTIM: &str = "examples/programs/victim.spec";
const CT_SBOX: &str = "examples/programs/ct_sbox.spec";
const COLD_LOOKUP: &str = "examples/programs/cold_lookup.spec";

fn specan(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_specan"))
        .args(args)
        .output()
        .expect("specan runs")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).unwrap()
}

#[test]
fn scan_exits_one_iff_any_program_leaks() {
    // The bundle contains cold_lookup, which leaks at every cache size.
    let out = specan(&["scan", PROGRAMS_DIR, "--json"]);
    assert_eq!(out.status.code(), Some(1), "a leaking bundle must exit 1");
    let stdout = stdout_of(&out);
    assert!(stdout.contains("\"program\": \"cold_lookup\""));
    assert!(stdout.contains("\"leak\": true"));

    // A clean-only bundle exits 0.
    let out = specan(&["scan", CT_SBOX, "--json"]);
    assert_eq!(out.status.code(), Some(0), "a clean bundle must exit 0");
    assert!(stdout_of(&out).contains("\"leaks\": 0"));
}

#[test]
fn sharded_scan_is_bit_identical_to_the_in_order_run() {
    // The in-order single-process reference: one shard, no subprocesses.
    let reference = specan(&[
        "scan",
        PROGRAMS_DIR,
        "--json",
        "--jobs",
        "1",
        "--in-process",
    ]);
    assert_eq!(reference.status.code(), Some(1));
    let reference = stdout_of(&reference);
    assert!(
        reference.matches("\"program\":").count() >= 3,
        "the example bundle must hold at least three programs"
    );
    // Worker subprocesses, various shard counts, and in-process threads all
    // merge to the same bytes.
    for extra in [
        &["--jobs", "2"][..],
        &["--jobs", "3"][..],
        &["--jobs", "16"][..],
        &["--jobs", "2", "--in-process"][..],
    ] {
        let mut args = vec!["scan", PROGRAMS_DIR, "--json"];
        args.extend_from_slice(extra);
        let out = specan(&args);
        assert_eq!(out.status.code(), Some(1), "{extra:?}");
        assert_eq!(stdout_of(&out), reference, "{extra:?} diverged");
    }
}

#[test]
fn scan_leak_check_panel_and_smaller_cache() {
    // At 8 lines the victim leaks too; the cheap panel still catches both.
    let out = specan(&[
        "scan",
        PROGRAMS_DIR,
        "--panel",
        "leak-check",
        "--cache-lines",
        "8",
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = stdout_of(&out);
    assert!(stdout.contains("\"kind\": \"leak-check\""));
    assert!(
        stdout.contains("\"leaks\": 2"),
        "victim and cold_lookup leak at 8 lines:\n{stdout}"
    );
}

#[test]
fn scan_shard_flag_slices_the_bundle_for_ci_fleets() {
    // Sorted bundle: cold_lookup, ct_sbox, victim.  Slice 1/2 takes the
    // first two, slice 2/2 the last one.
    let first = specan(&["scan", PROGRAMS_DIR, "--shard", "1/2", "--json"]);
    assert_eq!(first.status.code(), Some(1), "cold_lookup is in slice 1");
    let stdout = stdout_of(&first);
    assert!(stdout.contains("\"program\": \"cold_lookup\""));
    assert!(stdout.contains("\"program\": \"ct_sbox\""));
    assert!(!stdout.contains("\"program\": \"victim\""));

    let second = specan(&["scan", PROGRAMS_DIR, "--shard", "2/2", "--json"]);
    assert_eq!(
        second.status.code(),
        Some(0),
        "victim is clean at 512 lines"
    );
    assert!(stdout_of(&second).contains("\"program\": \"victim\""));

    // More machines than programs: the extra slice is legally empty.
    let empty = specan(&["scan", PROGRAMS_DIR, "--shard", "9/9", "--json"]);
    assert_eq!(empty.status.code(), Some(0));
    assert!(stdout_of(&empty).contains("\"programs\": [\n  ]"));
}

#[test]
fn empty_shard_slices_keep_analyze_and_compare_parseable() {
    // `analyze` renders the empty bundle as an empty JSON array...
    let out = specan(&["analyze", VICTIM, CT_SBOX, "--shard", "9/9", "--json"]);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(stdout_of(&out).split_whitespace().collect::<String>(), "[]");

    // ...and `compare` as an empty merged batch report.
    let out = specan(&["compare", VICTIM, CT_SBOX, "--shard", "9/9", "--json"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = stdout_of(&out);
    assert!(stdout.contains("\"leaks\": 0"));
    assert!(stdout.contains("\"programs\": [\n  ]"));
}

#[test]
fn one_file_shard_slices_keep_the_bundle_schema() {
    // A slice that happens to hold one file must emit the same schema as
    // its sibling machines: an array for `analyze`...
    let out = specan(&[
        "analyze",
        COLD_LOOKUP,
        CT_SBOX,
        VICTIM,
        "--shard",
        "2/2",
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = stdout_of(&out);
    assert!(
        stdout.trim_start().starts_with('['),
        "array expected:\n{stdout}"
    );
    assert!(stdout.trim_end().ends_with(']'));

    // ...and a merged batch report (not the timed single-file report) for
    // `compare`, so a cross-machine fan-in can parse every artifact.
    let out = specan(&[
        "compare",
        COLD_LOOKUP,
        CT_SBOX,
        VICTIM,
        "--shard",
        "2/2",
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = stdout_of(&out);
    assert!(
        stdout.contains("\"panel\":"),
        "batch schema expected:\n{stdout}"
    );
    assert!(!stdout.contains("suite_elapsed_secs"));
}

#[test]
fn worker_runs_one_shard_and_prints_its_report() {
    let shard = format!(
        "{{\"programs\": [{:?}, {:?}], \"panel\": {{\"kind\": \"comparison\", \"cache_lines\": 8}}}}",
        COLD_LOOKUP, VICTIM
    );
    let out = specan(&["worker", "--shard-json", &shard]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workers always exit 0 on success"
    );
    let stdout = stdout_of(&out);
    assert!(stdout.contains("\"program\": \"cold_lookup\""));
    assert!(stdout.contains("\"program\": \"victim\""));
    assert!(stdout.contains("\"label\": \"merge-at-rollback\""));
    // The worker's output is exactly what the merger parses: no timing.
    assert!(!stdout.contains("time_secs"));
    assert!(!stdout.contains("suite_elapsed"));
}

#[test]
fn worker_reads_the_shard_spec_from_stdin_with_dash() {
    use std::io::Write as _;
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_specan"))
        .args(["worker", "--shard-json", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("specan spawns");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(
            format!(
                "{{\"programs\": [{:?}], \"panel\": {{\"kind\": \"leak-check\", \"cache_lines\": 8}}}}",
                VICTIM
            )
            .as_bytes(),
        )
        .unwrap();
    let out = child.wait_with_output().expect("specan runs");
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout_of(&out).contains("\"program\": \"victim\""));
}

#[test]
fn worker_rejects_bad_input_with_exit_two() {
    let out = specan(&["worker", "--shard-json", "not json"]);
    assert_eq!(out.status.code(), Some(2));
    let out = specan(&["worker", "--shard-json", "{\"programs\": [\"/nope.spec\"], \"panel\": {\"kind\": \"comparison\", \"cache_lines\": 8}}"]);
    assert_eq!(out.status.code(), Some(2));
    let out = specan(&["worker"]);
    assert_eq!(out.status.code(), Some(2), "worker needs --shard-json");
}

#[test]
fn compare_accepts_a_bundle_and_emits_the_merged_report() {
    let out = specan(&[
        "compare",
        VICTIM,
        CT_SBOX,
        "--cache-lines",
        "8",
        "--jobs",
        "2",
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = stdout_of(&out);
    assert!(stdout.contains("\"program\": \"ct_sbox\""));
    assert!(stdout.contains("\"program\": \"victim\""));
    assert!(stdout.contains("\"label\": \"static-depth\""));
    // Bundle ordering is sorted-path order, not argument order.
    let ct = stdout.find("\"program\": \"ct_sbox\"").unwrap();
    let victim = stdout.find("\"program\": \"victim\"").unwrap();
    assert!(ct < victim);
}

#[test]
fn analyze_accepts_a_bundle_and_the_shard_flag() {
    let out = specan(&[
        "analyze",
        COLD_LOOKUP,
        CT_SBOX,
        VICTIM,
        "--cache-lines",
        "8",
        "--jobs",
        "2",
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = stdout_of(&out);
    assert!(
        stdout.trim_start().starts_with('['),
        "a bundle renders as a JSON array"
    );
    assert_eq!(stdout.matches("\"summary\":").count(), 3);

    // `--shard 2/2` of the three sorted files analyses only the third.
    let out = specan(&[
        "analyze",
        COLD_LOOKUP,
        CT_SBOX,
        VICTIM,
        "--shard",
        "2/2",
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = stdout_of(&out);
    assert_eq!(stdout.matches("\"summary\":").count(), 1);
    assert!(stdout.contains("\"program\": \"victim\""));
}

#[test]
fn scan_rejects_bad_usage_with_exit_two() {
    // Directories are a scan-only concept.
    let out = specan(&["analyze", PROGRAMS_DIR]);
    assert_eq!(out.status.code(), Some(2));
    // Degenerate shard expressions.
    for shard in ["0/2", "3/2", "x/2", "2"] {
        let out = specan(&["scan", PROGRAMS_DIR, "--shard", shard]);
        assert_eq!(out.status.code(), Some(2), "--shard {shard}");
    }
    // A scan of nothing is an input error.
    let out = specan(&["scan", "does/not/exist"]);
    assert_eq!(out.status.code(), Some(2));
    // Degenerate cache geometry.
    let out = specan(&["scan", PROGRAMS_DIR, "--cache-lines", "0"]);
    assert_eq!(out.status.code(), Some(2));
}
