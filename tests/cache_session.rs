//! Cross-worker staleness property suite for the tiered session front.
//!
//! The lock-free L0 pins `Arc<PreparedProgram>` handles per OS thread, so
//! the dangerous interleavings are the cross-thread ones: worker A edits,
//! renames or evicts a program while worker B still holds yesterday's
//! handle in its own L0.  Three properties are held:
//!
//! * **edits and renames are never stale** — after worker A re-prepares a
//!   program (new body, or same structure under new region names), worker
//!   B's next acquire renders output byte-identical, post timing-strip, to
//!   a fresh session-free run of the new version — never its pinned
//!   handle's;
//! * **evictions are never stale** — under a thrashing byte budget, a
//!   worker's repeat acquire misses every tier (the eviction's generation
//!   bump unseats the L0 seed) instead of replaying an evicted handle;
//! * **the ledger reconciles** — across any concurrent mix of hits,
//!   prepares and abandoned guards, every acquire lands in exactly one
//!   tier counter (`l0 + l1 + store + prepares + abandoned == acquires`).
//!
//! Like the other property suites, the generator is a deterministic
//! xorshift PRNG, so a failure reproduces from the printed case number.

use std::sync::mpsc;
use std::thread;

use spec_bench::service_harness::{random_program_text, Rng};
use speculative_absint::cache::CacheConfig;
use speculative_absint::core::cache_session::{CacheOutcome, CacheSession};
use speculative_absint::core::incremental::SessionCache;
use speculative_absint::core::session::{comparison_configs, Analyzer};
use speculative_absint::ir::text::parse_program;
use speculative_absint::ir::Program;

const CASES: u64 = 4;
const EDITS_PER_CASE: usize = 6;

fn cache() -> CacheConfig {
    CacheConfig::fully_associative(8, 64)
}

/// The stripped reference rendering of one program: what any tier — L0
/// handle, warm rebind, or re-prepare — must reproduce exactly.
fn fresh_report(program: &Program) -> String {
    Analyzer::new()
        .prepare(program)
        .run_suite(&comparison_configs(cache()))
        .report()
        .without_timing()
        .to_json()
}

/// Resolves `program` through the acquire/commit protocol — whichever
/// tier answers — and renders the stripped report.
fn acquire_report(sessions: &CacheSession, program: &Program) -> String {
    let prepared = match sessions.acquire(program) {
        CacheOutcome::L0Hit(prepared)
        | CacheOutcome::WarmHit(prepared)
        | CacheOutcome::StoreHit(prepared) => prepared,
        CacheOutcome::NeedsPrepare(guard) => guard.prepare(program),
    };
    prepared
        .run_suite(&comparison_configs(cache()))
        .report()
        .without_timing()
        .to_json()
}

#[test]
fn edits_on_worker_a_never_serve_stale_from_worker_bs_l0() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x10c4_0000 + case);
        let sessions = CacheSession::new(SessionCache::new());
        thread::scope(|s| {
            // Worker B lives on one OS thread for the whole case, so its
            // thread-local L0 accumulates handles across every version.
            let (to_b, b_rx) = mpsc::channel::<Program>();
            let (to_a, a_rx) = mpsc::channel::<String>();
            let worker = &sessions;
            s.spawn(move || {
                while let Ok(program) = b_rx.recv() {
                    to_a.send(acquire_report(worker, &program)).unwrap();
                }
            });

            let mut text = random_program_text(&mut rng, "hot");
            for edit in 0..EDITS_PER_CASE {
                // B serves (and L0-pins) the current version first.
                let program = parse_program(&text).expect("generated programs parse");
                to_b.send(program.clone()).unwrap();
                assert_eq!(
                    a_rx.recv().unwrap(),
                    fresh_report(&program),
                    "case {case} edit {edit}: the warm serve matches fresh"
                );

                // A commits a new version of the same key: alternately a
                // body edit (new fingerprint) and a region rename (same
                // structure, new names — the stale-names hazard, since
                // renames keep the structural fingerprint B's L0 is
                // keyed by).
                text = if edit % 2 == 0 {
                    random_program_text(&mut rng, "hot")
                } else {
                    text.replace("table", &format!("t{edit}"))
                };
                let edited = parse_program(&text).expect("edited programs parse");
                acquire_report(&sessions, &edited);

                // B's next acquire must render the new version — never
                // the handle still pinned in its L0.
                to_b.send(edited.clone()).unwrap();
                assert_eq!(
                    a_rx.recv().unwrap(),
                    fresh_report(&edited),
                    "case {case} edit {edit}: the post-edit serve must be \
                     byte-identical to a fresh run of the new version"
                );
            }
            drop(to_b);
        });
        assert!(
            sessions.acquire_stats().reconciles(),
            "case {case}: every acquire lands in exactly one tier counter"
        );
    }
}

#[test]
fn evictions_on_worker_a_never_serve_stale_from_worker_bs_l0() {
    let mut rng = Rng::new(0x0e71_c7ed);
    let text = random_program_text(&mut rng, "victim");
    let program = parse_program(&text).expect("generated programs parse");
    let expected = fresh_report(&program);
    // A zero budget evicts every install on the spot: the most hostile
    // schedule for a pinned L0 handle.
    let sessions = CacheSession::new(SessionCache::new().max_session_bytes(0));

    thread::scope(|s| {
        let (to_b, b_rx) = mpsc::channel::<()>();
        let (to_a, a_rx) = mpsc::channel::<(String, &'static str)>();
        let worker = &sessions;
        let victim = program.clone();
        s.spawn(move || {
            while b_rx.recv().is_ok() {
                let (prepared, how) = match worker.acquire(&victim) {
                    CacheOutcome::L0Hit(p) => (p, "l0"),
                    CacheOutcome::WarmHit(p) => (p, "warm"),
                    CacheOutcome::StoreHit(p) => (p, "store"),
                    CacheOutcome::NeedsPrepare(guard) => (guard.prepare(&victim), "prepared"),
                };
                let report = prepared
                    .run_suite(&comparison_configs(cache()))
                    .report()
                    .without_timing()
                    .to_json();
                to_a.send((report, how)).unwrap();
            }
        });

        for round in 0..4 {
            to_b.send(()).unwrap();
            let (report, how) = a_rx.recv().unwrap();
            assert_eq!(report, expected, "round {round}: eviction is invisible");
            assert_eq!(
                how, "prepared",
                "round {round}: a thrashing budget leaves nothing warm — \
                 the eviction's generation bump unseats worker B's L0 seed"
            );
            // Worker A's checkpoint re-enforces the budget; nothing stays.
            sessions.checkpoint();
            assert_eq!(sessions.len(), 0, "round {round}: nothing fits");
        }
        drop(to_b);
    });

    let stats = sessions.acquire_stats();
    assert!(stats.reconciles());
    assert_eq!(
        stats.l0_hits + stats.l1_hits,
        0,
        "no acquire was ever served from a handle the session had evicted"
    );
}

#[test]
fn counters_reconcile_under_concurrent_mixed_workloads() {
    const WORKERS: u64 = 4;
    const STEPS: u64 = 12;
    let mut rng = Rng::new(0x5ec5_ab1e);
    let programs: Vec<Program> = (0..6)
        .map(|i| {
            parse_program(&random_program_text(&mut rng, &format!("mix{i}")))
                .expect("generated programs parse")
        })
        .collect();
    let sessions = CacheSession::new(SessionCache::new());

    thread::scope(|s| {
        for worker_id in 0..WORKERS {
            let worker = sessions.clone();
            let programs = &programs;
            s.spawn(move || {
                let mut rng = Rng::new(0xab0a_0000 + worker_id);
                for step in 0..STEPS {
                    let program = &programs[rng.below(programs.len() as u64) as usize];
                    match worker.acquire(program) {
                        CacheOutcome::L0Hit(hit)
                        | CacheOutcome::WarmHit(hit)
                        | CacheOutcome::StoreHit(hit) => {
                            // Name-exact acquires only ever serve the
                            // exact program asked for.
                            assert_eq!(hit.program(), program);
                        }
                        CacheOutcome::NeedsPrepare(guard) => {
                            // Some guards are dropped uncommitted — a
                            // worker bailing mid-request — and must land
                            // in the abandoned counter, not vanish.
                            if step % 5 == 4 {
                                drop(guard);
                            } else {
                                guard.prepare(program);
                            }
                        }
                    }
                }
            });
        }
    });

    let stats = sessions.acquire_stats();
    assert_eq!(stats.acquires, WORKERS * STEPS);
    assert!(
        stats.reconciles(),
        "l0 {} + l1 {} + store {} + prepares {} + abandoned {} != acquires {}",
        stats.l0_hits,
        stats.l1_hits,
        stats.store_hits,
        stats.prepares,
        stats.abandoned,
        stats.acquires
    );
    assert!(stats.prepares >= 1, "someone prepared the pool");
}
