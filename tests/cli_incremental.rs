//! End-to-end tests of the incremental CLI flows: `specan analyze
//! --incremental` replays byte-identical output for unchanged programs, and
//! `specan scan --session-dir` re-analyses only the programs whose
//! structural fingerprints changed — with a merged report byte-identical to
//! a fresh scan either way.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::atomic::{AtomicUsize, Ordering};

fn specan_in(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_specan"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("specan runs")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).unwrap()
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).unwrap()
}

/// Zeroes the timing fields of `analyze --json` output — the only
/// non-deterministic bytes — mirroring what the CI gate's `sed` does.
fn strip_timing(json: &str) -> String {
    let mut out = String::with_capacity(json.len());
    for line in json.lines() {
        if let Some(at) = line.find("\"time_secs\": ") {
            out.push_str(&line[..at]);
            out.push_str("\"time_secs\": 0");
            out.push_str(line[at..].find('}').map_or("", |_| "}"));
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

static SCRATCH_ID: AtomicUsize = AtomicUsize::new(0);

/// A scratch copy of the example bundle; removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new() -> Self {
        let dir = std::env::temp_dir().join(format!(
            "specan-incremental-cli-{}-{}",
            std::process::id(),
            SCRATCH_ID.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["victim.spec", "ct_sbox.spec", "cold_lookup.spec"] {
            std::fs::copy(Path::new("examples/programs").join(name), dir.join(name)).unwrap();
        }
        Self(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn analyze_incremental_replays_and_tracks_edits() {
    let scratch = Scratch::new();
    let args = [
        "analyze",
        "victim.spec",
        "--cache-lines",
        "8",
        "--json",
        "--incremental",
        "--session-dir",
        "session",
    ];

    // Cold: analysed and stored.
    let first = specan_in(&scratch.0, &args);
    assert_eq!(first.status.code(), Some(0));
    assert!(stderr_of(&first).contains("session: analysed `victim.spec`"));

    // Warm: replayed byte-for-byte (timing included — it is the stored
    // rendering).
    let second = specan_in(&scratch.0, &args);
    assert_eq!(second.status.code(), Some(0));
    assert!(stderr_of(&second).contains("session: replayed `victim.spec`"));
    assert_eq!(stdout_of(&first), stdout_of(&second));

    // The replay equals a fresh session-free run after the timing strip.
    let fresh = specan_in(
        &scratch.0,
        &["analyze", "victim.spec", "--cache-lines", "8", "--json"],
    );
    assert_eq!(
        strip_timing(&stdout_of(&second)),
        strip_timing(&stdout_of(&fresh))
    );

    // A flag change must not replay the stored rendering.
    let other_flags = specan_in(
        &scratch.0,
        &[
            "analyze",
            "victim.spec",
            "--cache-lines",
            "8",
            "--json",
            "--baseline",
            "--incremental",
            "--session-dir",
            "session",
        ],
    );
    assert!(stderr_of(&other_flags).contains("session: analysed"));

    // Edit the file in place: re-analysed, and equal to fresh post-strip.
    let source = std::fs::read_to_string(scratch.0.join("victim.spec")).unwrap();
    std::fs::write(
        scratch.0.join("victim.spec"),
        source.replace("load sbox[0]", "load sbox[0]\n  load sbox[64]"),
    )
    .unwrap();
    let edited = specan_in(&scratch.0, &args);
    assert!(stderr_of(&edited).contains("session: analysed `victim.spec`"));
    let fresh = specan_in(
        &scratch.0,
        &["analyze", "victim.spec", "--cache-lines", "8", "--json"],
    );
    assert_eq!(
        strip_timing(&stdout_of(&edited)),
        strip_timing(&stdout_of(&fresh))
    );
    assert_ne!(
        stdout_of(&edited),
        stdout_of(&first),
        "the edit must change the analysis output"
    );
}

#[test]
fn scan_session_reuses_unchanged_programs_byte_identically() {
    let scratch = Scratch::new();
    let session_args = [
        "scan",
        ".",
        "--json",
        "--in-process",
        "--session-dir",
        "session",
    ];
    let fresh_args = ["scan", ".", "--json", "--in-process"];

    let cold = specan_in(&scratch.0, &session_args);
    assert_eq!(cold.status.code(), Some(1), "cold_lookup leaks: exit 1");
    assert!(stderr_of(&cold).contains("session: 0 program(s) reused, 3 analysed"));

    let warm = specan_in(&scratch.0, &session_args);
    assert_eq!(warm.status.code(), Some(1));
    assert!(stderr_of(&warm).contains("session: 3 program(s) reused, 0 analysed"));

    let fresh = specan_in(&scratch.0, &fresh_args);
    assert_eq!(stdout_of(&cold), stdout_of(&fresh));
    assert_eq!(stdout_of(&warm), stdout_of(&fresh));

    // Renames are structurally invisible: only labels change, everything
    // replays, and the report still matches a fresh scan (whose output
    // never contains block or region labels).
    let source = std::fs::read_to_string(scratch.0.join("ct_sbox.spec")).unwrap();
    assert!(source.contains("block main entry:"), "fixture changed?");
    std::fs::write(
        scratch.0.join("ct_sbox.spec"),
        source
            .replace("block main entry:", "block main_renamed entry:")
            .replace("jump main", "jump main_renamed"),
    )
    .unwrap();
    let renamed = specan_in(&scratch.0, &session_args);
    assert!(stderr_of(&renamed).contains("session: 3 program(s) reused, 0 analysed"));
    assert_eq!(stdout_of(&renamed), stdout_of(&fresh));

    // A real edit re-analyses exactly the touched program.
    let source = std::fs::read_to_string(scratch.0.join("victim.spec")).unwrap();
    std::fs::write(
        scratch.0.join("victim.spec"),
        source.replace("load sbox[0]", "load sbox[0]\n  load sbox[64]"),
    )
    .unwrap();
    let edited = specan_in(&scratch.0, &session_args);
    assert!(stderr_of(&edited).contains("session: 2 program(s) reused, 1 analysed"));
    let fresh = specan_in(&scratch.0, &fresh_args);
    assert_eq!(stdout_of(&edited), stdout_of(&fresh));
}

#[test]
fn incremental_flag_validation() {
    let scratch = Scratch::new();
    // --session-dir without --incremental is a usage error on analyze...
    let out = specan_in(
        &scratch.0,
        &["analyze", "victim.spec", "--session-dir", "s"],
    );
    assert_eq!(out.status.code(), Some(2));
    // ...--incremental does not apply to scan (--session-dir alone does)...
    let out = specan_in(&scratch.0, &["scan", ".", "--incremental"]);
    assert_eq!(out.status.code(), Some(2));
    // ...and neither flag applies to leaks.
    let out = specan_in(&scratch.0, &["leaks", "victim.spec", "--session-dir", "s"]);
    assert_eq!(out.status.code(), Some(2));
}
