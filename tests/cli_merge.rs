//! End-to-end tests of `specan merge`: the verified cross-machine fan-in
//! over `--shard K/N` scan artifacts.  The acceptance contract: merging
//! every slice reproduces the unsharded report byte-for-byte, and any
//! incomplete, overlapping or mismatched slice set is refused with a
//! nonzero exit.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::atomic::{AtomicUsize, Ordering};

fn specan_in(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_specan"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("specan runs")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).unwrap()
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).unwrap()
}

static SCRATCH_ID: AtomicUsize = AtomicUsize::new(0);

/// A scratch copy of the example bundle; removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new() -> Self {
        let dir = std::env::temp_dir().join(format!(
            "specan-merge-cli-{}-{}",
            std::process::id(),
            SCRATCH_ID.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(dir.join("programs")).unwrap();
        for name in ["victim.spec", "ct_sbox.spec", "cold_lookup.spec"] {
            std::fs::copy(
                Path::new("examples/programs").join(name),
                dir.join("programs").join(name),
            )
            .unwrap();
        }
        Self(dir)
    }

    /// Runs `scan programs --json` with `extra` flags, captures the report
    /// into `out`, and returns the exit code.
    fn scan(&self, out: &str, extra: &[&str]) -> i32 {
        let mut args = vec!["scan", "programs", "--json", "--in-process"];
        args.extend_from_slice(extra);
        let output = specan_in(&self.0, &args);
        std::fs::write(self.0.join(out), output.stdout).unwrap();
        output.status.code().unwrap()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn merge_reproduces_the_unsharded_report_byte_for_byte() {
    let scratch = Scratch::new();
    assert_eq!(scratch.scan("full.json", &[]), 1, "cold_lookup leaks");
    // Three machines, three slices (the bundle holds three programs).
    for k in 1..=3 {
        let code = scratch.scan(&format!("s{k}.json"), &["--shard", &format!("{k}/3")]);
        assert!(code == 0 || code == 1, "slice {k} ran");
    }
    // Fan-in, in arbitrary order, equals the unsharded run exactly.
    let merged = specan_in(
        &scratch.0,
        &["merge", "s3.json", "s1.json", "s2.json", "--json"],
    );
    assert_eq!(
        merged.status.code(),
        Some(1),
        "the merged bundle still leaks: {}",
        stderr_of(&merged)
    );
    let full = std::fs::read_to_string(scratch.0.join("full.json")).unwrap();
    assert_eq!(stdout_of(&merged), full, "merge must be byte-identical");
    assert!(stderr_of(&merged).contains("3 slice(s) verified"));

    // Text mode renders the merged table without gating differently.
    let text = specan_in(&scratch.0, &["merge", "s1.json", "s2.json", "s3.json"]);
    assert_eq!(text.status.code(), Some(1));
    assert!(stdout_of(&text).contains("scanned 3 program(s), 1 leaking"));
}

#[test]
fn merge_rejects_incomplete_overlapping_and_mismatched_slice_sets() {
    let scratch = Scratch::new();
    for k in 1..=2 {
        scratch.scan(&format!("s{k}.json"), &["--shard", &format!("{k}/2")]);
    }

    // A missing slice: nonzero exit, no report on stdout.
    let out = specan_in(&scratch.0, &["merge", "s1.json", "--json"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr_of(&out).contains("cover only"),
        "{}",
        stderr_of(&out)
    );
    assert!(stdout_of(&out).is_empty());

    // The same slice twice: overlap.
    let out = specan_in(&scratch.0, &["merge", "s1.json", "s1.json", "--json"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("overlap"), "{}", stderr_of(&out));

    // Slices of different panels (another cache geometry) do not mix.
    scratch.scan("other.json", &["--shard", "2/2", "--cache-lines", "8"]);
    let out = specan_in(&scratch.0, &["merge", "s1.json", "other.json", "--json"]);
    assert_eq!(out.status.code(), Some(2));

    // A tampered slice under a matching stamp: the checksum recompute
    // catches it.
    let text = std::fs::read_to_string(scratch.0.join("s2.json")).unwrap();
    let start = text.find("\"fingerprint\": \"").unwrap() + "\"fingerprint\": \"".len();
    let mut tampered = text.clone();
    tampered.replace_range(start..start + 16, "0000000000000000");
    assert_ne!(tampered, text, "the fixture must actually change");
    std::fs::write(scratch.0.join("tampered.json"), tampered).unwrap();
    let out = specan_in(&scratch.0, &["merge", "s1.json", "tampered.json", "--json"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("checksum"), "{}", stderr_of(&out));

    // Garbage input is a usage error, not a panic.
    std::fs::write(scratch.0.join("junk.json"), "not json").unwrap();
    let out = specan_in(&scratch.0, &["merge", "junk.json"]);
    assert_eq!(out.status.code(), Some(2));
    let out = specan_in(&scratch.0, &["merge", "missing.json"]);
    assert_eq!(out.status.code(), Some(2));
}
