//! The shipped sample program (`examples/programs/victim.spec`) parses and
//! shows the expected baseline-vs-speculative contrast — the same contract
//! the `specan` CLI relies on.

use speculative_absint::cache::CacheConfig;
use speculative_absint::core::{AnalysisOptions, Analyzer};
use speculative_absint::ir::text::parse_program;

#[test]
fn sample_program_parses_and_shows_the_speculative_gap() {
    let source = include_str!("../examples/programs/victim.spec");
    let program = parse_program(source).expect("sample program parses");
    assert_eq!(program.name(), "victim");
    assert_eq!(program.branch_count(), 1);
    assert_eq!(program.secret_regions().len(), 1);

    let cache = CacheConfig::fully_associative(8, 64);
    let prepared = Analyzer::new().prepare(&program);
    let baseline = prepared.run(
        &AnalysisOptions::builder()
            .baseline()
            .cache(cache)
            .build()
            .unwrap(),
    );
    let speculative = prepared.run(&AnalysisOptions::builder().cache(cache).build().unwrap());

    let base_secret = baseline.secret_accesses().next().expect("secret access");
    let spec_secret = speculative.secret_accesses().next().expect("secret access");
    assert!(
        base_secret.observable_hit,
        "baseline proves the lookup hits"
    );
    assert!(
        !spec_secret.observable_hit,
        "speculation can evict a table line before the lookup"
    );
}

#[test]
fn sample_program_round_trips_through_the_printer() {
    let source = include_str!("../examples/programs/victim.spec");
    let program = parse_program(source).unwrap();
    let reparsed = parse_program(&program.to_string()).unwrap();
    assert_eq!(program.blocks().len(), reparsed.blocks().len());
    assert_eq!(program.regions(), reparsed.regions());
}
