//! End-to-end tests of the `specan` binary: subcommands, JSON output and
//! the CI-facing exit-code contract (0 = clean, 1 = leak, 2 = error).

use std::process::{Command, Output};

const VICTIM: &str = "examples/programs/victim.spec";

fn specan(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_specan"))
        .args(args)
        .output()
        .expect("specan runs")
}

#[test]
fn leaks_exits_nonzero_when_a_leak_is_detected() {
    let out = specan(&["leaks", VICTIM, "--cache-lines", "8"]);
    assert_eq!(out.status.code(), Some(1), "leak must map to exit code 1");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("speculative: LEAK"));
    assert!(stdout.contains("baseline:    leak-free"));
}

#[test]
fn leaks_exits_zero_on_a_leak_free_cache() {
    // With a cache big enough that nothing is ever evicted, the lookup
    // cannot leak.  (The analysis needs headroom beyond the working set
    // because speculative pollution is modelled too.)
    let out = specan(&["leaks", VICTIM, "--cache-lines", "64"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "leak-free must map to exit code 0"
    );
}

#[test]
fn leaks_json_reports_the_finding() {
    let out = specan(&["leaks", VICTIM, "--cache-lines", "8", "--json"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"speculative_leak\": true"));
    assert!(stdout.contains("\"baseline_leak\": false"));
    assert!(stdout.contains("\"region\": \"sbox\""));
}

#[test]
fn compare_runs_the_labelled_panel() {
    let out = specan(&["compare", VICTIM, "--cache-lines", "8"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    for label in [
        "baseline",
        "speculative",
        "merge-at-rollback",
        "no-shadow",
        "static-depth",
    ] {
        assert!(
            stdout.contains(label),
            "missing `{label}` row in:\n{stdout}"
        );
    }
}

#[test]
fn compare_json_is_labelled() {
    let out = specan(&["compare", VICTIM, "--cache-lines", "8", "--json"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"program\": \"victim\""));
    assert!(stdout.contains("\"label\": \"merge-at-rollback\""));
    assert!(stdout.contains("\"suite_elapsed_secs\""));
}

#[test]
fn analyze_reports_the_secret_access() {
    let out = specan(&["analyze", VICTIM, "--cache-lines", "8"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("[secret-indexed]"));
    assert!(stdout.contains("LEAK"));
}

#[test]
fn analyze_baseline_sees_no_leak() {
    let out = specan(&["analyze", VICTIM, "--cache-lines", "8", "--baseline"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("no cache side-channel leak detected"));
}

#[test]
fn errors_exit_with_code_two() {
    assert_eq!(specan(&[]).status.code(), Some(2), "missing command");
    assert_eq!(
        specan(&["bogus", VICTIM]).status.code(),
        Some(2),
        "unknown command"
    );
    assert_eq!(specan(&["analyze"]).status.code(), Some(2), "missing path");
    assert_eq!(
        specan(&["analyze", "does/not/exist.spec"]).status.code(),
        Some(2),
        "unreadable input"
    );
    assert_eq!(
        specan(&["analyze", VICTIM, "--cache-lines", "zero"])
            .status
            .code(),
        Some(2),
        "malformed flag value"
    );
    assert_eq!(
        specan(&["analyze", VICTIM, "--cache-lines", "0"])
            .status
            .code(),
        Some(2),
        "options validation rejects an empty cache"
    );
}
