//! Cross-crate integration tests: the full pipeline from workload
//! construction through analysis to the applications, checked against the
//! concrete simulator.

use speculative_absint::analysis::{detect_leaks, EteComparison, SideChannelComparison};
use speculative_absint::cache::CacheConfig;
use speculative_absint::core::{AnalysisOptions, Analyzer, CacheAnalysis};
use speculative_absint::sim::{PredictorKind, SimConfig, SimInput, Simulator};
use speculative_absint::workloads::{crypto_suite, ete_suite, figure2_program, quantl_program};

const LINES: u64 = 32;

fn cache() -> CacheConfig {
    CacheConfig::fully_associative(LINES as usize, 64)
}

#[test]
fn figure2_results_match_the_paper_shape() {
    let program = figure2_program(LINES);
    let cache = cache();

    // Concrete executions (Figure 3): N misses + 1 hit vs N+1 misses.
    let non_spec = Simulator::new(SimConfig::non_speculative().with_cache(cache))
        .run(&program, &SimInput::new(1, 0));
    assert_eq!(non_spec.observable_misses, LINES);
    assert_eq!(non_spec.observable_hits, 1);
    let wrong = Simulator::new(
        SimConfig::default()
            .with_cache(cache)
            .with_predictor(PredictorKind::AlwaysWrong),
    )
    .run(&program, &SimInput::new(1, 0));
    assert_eq!(wrong.observable_misses, LINES + 1);
    assert_eq!(wrong.speculative_misses, 1);

    // Static analyses (Section 2): only the speculative one flags ph[k].
    let prepared = Analyzer::new().prepare(&program);
    let base = prepared.run(
        &AnalysisOptions::builder()
            .baseline()
            .cache(cache)
            .build()
            .unwrap(),
    );
    let spec = prepared.run(&AnalysisOptions::builder().cache(cache).build().unwrap());
    assert!(base.secret_accesses().next().unwrap().observable_hit);
    assert!(!spec.secret_accesses().next().unwrap().observable_hit);
}

#[test]
fn speculative_analysis_dominates_the_baseline_on_every_ete_workload() {
    let comparison = EteComparison::new(cache());
    for workload in ete_suite(LINES) {
        let row = comparison.run(&workload.program);
        assert!(
            row.spec_miss >= row.nonspec_miss,
            "{}: speculative analysis must be at least as conservative",
            row.name
        );
        assert!(row.spec_wcet >= row.nonspec_wcet, "{}", row.name);
    }
}

#[test]
fn table7_shape_baseline_clean_speculation_splits_the_suite() {
    let comparison = SideChannelComparison::new(cache()).with_confirmation(false);
    let mut leaky = Vec::new();
    for (workload, buffer) in crypto_suite(LINES) {
        let row = comparison.run(&workload.program, buffer);
        assert!(
            !row.nonspec_leak,
            "{}: the buffer is sized so the baseline proves leak freedom",
            row.name
        );
        if row.spec_leak {
            leaky.push(row.name.clone());
        }
    }
    for expected in ["hash", "encoder", "chacha20", "ocb", "des"] {
        assert!(
            leaky.contains(&expected.to_string()),
            "{expected} should leak"
        );
    }
    for expected in ["aes", "str2key", "seed", "camellia", "salsa"] {
        assert!(
            !leaky.contains(&expected.to_string()),
            "{expected} should not leak"
        );
    }
}

#[test]
fn analysis_classification_is_sound_against_concrete_executions() {
    // For a collection of programs, predictors and inputs: every access the
    // speculative analysis declares a guaranteed (observable) hit must hit
    // in every concrete execution's committed path.
    let cache = cache();
    let mut programs = vec![figure2_program(LINES), quantl_program()];
    programs.extend(ete_suite(LINES).into_iter().map(|w| w.program));

    let analysis = CacheAnalysis::new(AnalysisOptions::builder().cache(cache).build().unwrap());
    for program in &programs {
        let result = analysis.run(program);
        for predictor in [
            PredictorKind::AlwaysWrong,
            PredictorKind::AlwaysTaken,
            PredictorKind::AlwaysNotTaken,
            PredictorKind::TwoBit,
        ] {
            let simulator = Simulator::new(
                SimConfig::default()
                    .with_cache(cache)
                    .with_predictor(predictor),
            );
            for input_value in [0u64, 1, 5, 0xff] {
                // The analysis runs on the unrolled program, which is an
                // executable program in its own right: simulate that one so
                // block/instruction coordinates line up.
                let report = simulator.run(
                    &result.program,
                    &SimInput::new(input_value, input_value % 7),
                );
                for event in report.committed_events() {
                    if event.hit {
                        continue;
                    }
                    if let Some(access) = result.access_at(event.block, event.inst_index) {
                        assert!(
                            !access.observable_hit,
                            "{}: access {}[{}] at {:?} was declared a must-hit but missed \
                             (predictor {predictor:?}, input {input_value})",
                            program.name(),
                            access.region_name,
                            access.inst_index,
                            event.block,
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn leak_verdicts_are_consistent_with_the_simulator() {
    // Whenever the simulator observes secret-dependent timing, the
    // speculative analysis must report a leak (the converse may not hold —
    // the analysis is allowed to be conservative).
    let cache = cache();
    let analysis = CacheAnalysis::new(AnalysisOptions::builder().cache(cache).build().unwrap());
    for (workload, _) in crypto_suite(LINES) {
        let result = analysis.run(&workload.program);
        let verdict = detect_leaks(&result).leak_detected();
        let empirically = speculative_absint::analysis::confirm_leak_empirically(
            &workload.program,
            &SimConfig::default()
                .with_cache(cache)
                .with_predictor(PredictorKind::AlwaysWrong),
            16,
        );
        assert!(
            verdict || !empirically,
            "{}: simulator observes a secret-dependent timing difference but the analysis \
             reports no leak",
            workload.name()
        );
    }
}

#[test]
fn quantl_walkthrough_has_more_pessimism_under_speculation() {
    let program = quantl_program();
    let cache = CacheConfig::fully_associative(16, 64);
    let prepared = Analyzer::new().prepare(&program);
    let base = prepared.run(
        &AnalysisOptions::builder()
            .baseline()
            .cache(cache)
            .build()
            .unwrap(),
    );
    let spec = prepared.run(&AnalysisOptions::builder().cache(cache).build().unwrap());
    assert!(spec.miss_count() >= base.miss_count());
    assert!(spec.speculated_branches >= 1);
}
