//! Eviction-equivalence property suite: byte-budgeted sessions must be
//! invisible in results.
//!
//! Random program sets × random byte budgets — including budgets that
//! force a thrash (every request evicts) — are driven through two layers:
//!
//! * a [`CacheSession`] front over a budgeted [`SessionCache`]: every suite
//!   report acquired through a budgeted session must serialize to exactly
//!   the bytes of a fresh, session-free run once the timing fields are
//!   stripped, the resident-bytes invariant must hold after every
//!   checkpoint, and the counters must reconcile — both the cache's
//!   (`inserted - session_evictions = resident entries`) and the front's
//!   (every acquire lands in exactly one tier counter);
//! * a live `specan serve --max-session-bytes` process (via the shared
//!   `spec_bench::service_harness`): responses from a thrashing server
//!   must be byte-identical, post timing-strip, to an unbounded server's.
//!
//! Like the other property suites, the generator is a deterministic
//! xorshift PRNG, so a failure reproduces from the printed case number.

use std::path::Path;
use std::process::{Command, Output};

use spec_bench::service_harness::{
    random_program_text, strip_analyze_timing, Rng, Scratch, ServeProcess,
};
use speculative_absint::cache::CacheConfig;
use speculative_absint::core::cache_session::{CacheOutcome, CacheSession};
use speculative_absint::core::incremental::SessionCache;
use speculative_absint::core::session::{comparison_configs, Analyzer, PreparedProgram};
use speculative_absint::ir::text::parse_program;

const CASES: u64 = 4;
const PROGRAMS_PER_CASE: usize = 4;

/// The stripped reference rendering of one program under the comparison
/// panel: what any session — warm, evicted, re-prepared — must reproduce.
fn fresh_report(source: &str, cache: CacheConfig) -> String {
    let program = parse_program(source).expect("generated programs parse");
    let prepared = Analyzer::new().prepare(&program);
    prepared
        .run_suite(&comparison_configs(cache))
        .report()
        .without_timing()
        .to_json()
}

/// Resolves one program through the session front's acquire/commit
/// protocol, whichever tier answers.
fn acquire_any(sessions: &CacheSession, source: &str) -> std::sync::Arc<PreparedProgram> {
    let program = parse_program(source).expect("generated programs parse");
    match sessions.acquire(&program) {
        CacheOutcome::L0Hit(prepared)
        | CacheOutcome::WarmHit(prepared)
        | CacheOutcome::StoreHit(prepared) => prepared,
        CacheOutcome::NeedsPrepare(guard) => guard.prepare(&program),
    }
}

/// One pass of a program sequence through a session front, mirroring the
/// service's request loop: acquire, run the panel, checkpoint (which
/// enforces the budget).  Returns the stripped reports in sequence order.
fn drive_session(sessions: &CacheSession, sources: &[&str], cache: CacheConfig) -> Vec<String> {
    sources
        .iter()
        .map(|source| {
            let prepared = acquire_any(sessions, source);
            let report = prepared
                .run_suite(&comparison_configs(cache))
                .report()
                .without_timing()
                .to_json();
            sessions.checkpoint();
            if let Some(budget) = sessions.budget() {
                assert!(
                    sessions.resident_bytes() <= budget,
                    "resident {} bytes > budget {budget} after enforcement",
                    sessions.resident_bytes()
                );
            }
            assert!(
                sessions.acquire_stats().reconciles(),
                "every acquire lands in exactly one tier counter"
            );
            report
        })
        .collect()
}

#[test]
fn budgeted_sessions_reproduce_fresh_reports_bit_for_bit() {
    let cache = CacheConfig::fully_associative(8, 64);
    let mut rng = Rng::new(0xeb1c_7ed5);
    for case in 0..CASES {
        let names: Vec<String> = (0..PROGRAMS_PER_CASE).map(|i| format!("p{i}")).collect();
        let texts: Vec<String> = names
            .iter()
            .map(|name| random_program_text(&mut rng, name))
            .collect();
        // Visit each program twice, in a shuffled order, so warm rebinds,
        // evicted re-preparations and plain inserts all occur.
        let mut order: Vec<&str> = texts
            .iter()
            .chain(texts.iter())
            .map(String::as_str)
            .collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.below(i as u64 + 1) as usize);
        }
        let expected: Vec<String> = order.iter().map(|s| fresh_report(s, cache)).collect();

        // Calibrate budgets against measured per-program entry sizes (the
        // deterministic HeapSize estimate of a ran-in session), so the
        // sweep covers "fits nothing" through "fits everything" however
        // heavy the generated programs are.
        let entry_bytes: Vec<u64> = texts
            .iter()
            .map(|text| {
                let probe = CacheSession::new(SessionCache::new());
                drive_session(&probe, &[text.as_str()], cache);
                probe.resident_bytes()
            })
            .collect();
        let min_entry = *entry_bytes.iter().min().unwrap();
        let max_entry = *entry_bytes.iter().max().unwrap();
        assert!(min_entry > 0, "prepared sessions own heap memory");
        let budgets = [
            Some(0),              // thrash: every request evicts its own entry
            Some(min_entry / 2),  // thrash: no ran-in entry ever fits
            Some(max_entry * 2),  // partial: a working set of a few programs
            Some(max_entry * 64), // roomy: no evictions at all
            None,                 // unbounded reference
        ];
        for budget in budgets {
            let session = CacheSession::new(match budget {
                Some(bytes) => SessionCache::new().max_session_bytes(bytes),
                None => SessionCache::new(),
            });
            let got = drive_session(&session, &order, cache);
            assert_eq!(
                got, expected,
                "case {case}, budget {budget:?}: budgeted reports must be \
                 byte-identical to fresh session-free runs"
            );
            let stats = session.stats();
            assert_eq!(
                stats.inserted - stats.session_evictions,
                session.len() as u64,
                "case {case}, budget {budget:?}: installs minus evictions \
                 must equal the resident entries"
            );
            assert_eq!(stats.session_bytes, session.resident_bytes());
            let acquired = session.acquire_stats();
            match budget {
                // A sub-entry budget keeps nothing resident and evicts on
                // every sighting (each insert is followed by its eviction,
                // whose generation bump unseats the worker's L0 handle).
                Some(bytes) if bytes < min_entry => {
                    assert_eq!(session.len(), 0, "case {case}: nothing fits");
                    assert_eq!(stats.session_evictions, stats.inserted);
                    assert_eq!(
                        acquired.l0_hits + acquired.l1_hits,
                        0,
                        "nothing survives to be served warm"
                    );
                }
                Some(_) => {}
                None => {
                    assert_eq!(stats.session_evictions, 0, "unbounded never evicts");
                    assert!(
                        acquired.l0_hits + acquired.l1_hits > 0,
                        "second visits are served from a warm tier"
                    );
                }
            }
        }
    }
}

/// The acquire/commit protocol the service pool uses keeps its contract
/// under a byte budget: an eviction's generation bump turns the next
/// acquire into a miss (never a stale hit — not even from the worker's own
/// lock-free L0 handle), a commit over budget evicts at the checkpoint,
/// and results never change.
#[test]
fn two_phase_resolve_stays_correct_under_eviction() {
    let cache = CacheConfig::fully_associative(8, 64);
    let mut rng = Rng::new(0x2fa5_0e01);
    let a = random_program_text(&mut rng, "alpha");
    let b = random_program_text(&mut rng, "beta");
    let parse = |s: &str| parse_program(s).unwrap();

    // Budget sized to hold either program alone but never both: at least
    // the bigger ran-in entry, strictly below their sum.
    let probe_bytes = |text: &str| {
        let probe = CacheSession::new(SessionCache::new());
        drive_session(&probe, &[text], cache);
        probe.resident_bytes()
    };
    let (a_bytes, b_bytes) = (probe_bytes(&a), probe_bytes(&b));
    let budget = a_bytes.max(b_bytes) + a_bytes.min(b_bytes) / 2;
    let session = CacheSession::new(SessionCache::new().max_session_bytes(budget));

    // Cold alpha: resolved through the guard, ran in, checkpointed.
    let pa = match session.acquire(&parse(&a)) {
        CacheOutcome::NeedsPrepare(guard) => guard.prepare(&parse(&a)),
        other => panic!("cold acquire must miss, got `{}`", other.tag()),
    };
    pa.run_suite(&comparison_configs(cache));
    session.checkpoint();
    match session.acquire(&parse(&a)) {
        CacheOutcome::L0Hit(_) | CacheOutcome::WarmHit(_) => {}
        other => panic!("alpha resident, got `{}`", other.tag()),
    };

    // Preparing (and running) beta pushes the session over budget; alpha
    // is the LRU victim at the checkpoint.
    let pb = match session.acquire(&parse(&b)) {
        CacheOutcome::NeedsPrepare(guard) => guard.prepare(&parse(&b)),
        other => panic!("cold acquire must miss, got `{}`", other.tag()),
    };
    pb.run_suite(&comparison_configs(cache));
    session.checkpoint();
    match session.acquire(&parse(&b)) {
        CacheOutcome::L0Hit(_) | CacheOutcome::WarmHit(_) => {}
        other => panic!("beta resident, got `{}`", other.tag()),
    };
    // The eviction's generation bump unseats alpha's L0 handle too: the
    // acquire walks every tier and misses instead of replaying a handle
    // the session no longer owns.
    let guard = match session.acquire(&parse(&a)) {
        CacheOutcome::NeedsPrepare(guard) => guard,
        other => panic!(
            "alpha was evicted, acquire must miss, got `{}`",
            other.tag()
        ),
    };
    assert!(session.stats().session_evictions >= 1);

    // Re-preparing alpha after its eviction reproduces the fresh report.
    let re = guard.prepare(&parse(&a));
    let report = re
        .run_suite(&comparison_configs(cache))
        .report()
        .without_timing()
        .to_json();
    assert_eq!(report, fresh_report(&a, cache));
    let stats = session.stats();
    assert_eq!(
        stats.inserted - stats.session_evictions,
        session.len() as u64
    );
    assert!(session.acquire_stats().reconciles());
}

// ---------------------------------------------------------------------------
// Service layer: a live `specan serve --max-session-bytes` process.
// ---------------------------------------------------------------------------

fn specan(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_specan"))
        .args(args)
        .output()
        .expect("specan runs")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).unwrap()
}

fn submit(server: &ServeProcess, args: &[&str]) -> Output {
    let mut full = vec!["submit", "--addr", server.addr()];
    full.extend_from_slice(args);
    specan(&full)
}

#[test]
fn thrashing_server_responses_match_an_unbounded_server() {
    // One byte fits no prepared program: the bounded server evicts after
    // every request — the extreme end of the budget sweep — while the
    // unbounded server keeps everything warm.  Their responses must agree
    // byte-for-byte once the wall clocks are stripped.
    let specan_bin = Path::new(env!("CARGO_BIN_EXE_specan"));
    let bounded = ServeProcess::start_with_args(specan_bin, 2, &["--max-session-bytes", "1"]);
    let unbounded = ServeProcess::start(specan_bin, 2);
    let scratch = Scratch::new("specan-eviction-equiv");
    let mut rng = Rng::new(0x5e47_e001);

    let mut paths = Vec::new();
    for i in 0..4 {
        let name = format!("srv{i}");
        let path = scratch.write(
            &format!("{name}.spec"),
            &random_program_text(&mut rng, &name),
        );
        paths.push(path);
    }

    for round in 0..2 {
        for (i, path) in paths.iter().enumerate() {
            let path = path.to_str().unwrap();
            let args = ["analyze", path, "--cache-lines", "8", "--json"];
            let cold = submit(&bounded, &args);
            let warm = submit(&unbounded, &args);
            assert_eq!(
                cold.status.code(),
                Some(0),
                "round {round} program {i}: {}",
                String::from_utf8_lossy(&cold.stderr)
            );
            assert_eq!(
                strip_analyze_timing(&stdout_of(&cold)),
                strip_analyze_timing(&stdout_of(&warm)),
                "round {round} program {i}: eviction must be invisible"
            );
        }
        // Scan responses are timing-free: exact equality, same exit code.
        let dir = scratch.dir().to_str().unwrap();
        let args = ["scan", dir, "--cache-lines", "8", "--json"];
        let cold = submit(&bounded, &args);
        let warm = submit(&unbounded, &args);
        assert_eq!(cold.status.code(), warm.status.code());
        assert_eq!(stdout_of(&cold), stdout_of(&warm), "round {round}: scan");
    }

    // The bounded server really was thrashing: nothing resident, and
    // every install was followed by an eviction.
    let status = stdout_of(&submit(&bounded, &["status"]));
    assert!(
        status.contains("\"programs\": 0"),
        "a 1-byte budget keeps nothing: {status}"
    );
    let evictions: u64 = status
        .split("\"session_evictions\": ")
        .nth(1)
        .and_then(|rest| rest.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|digits| digits.parse().ok())
        .expect("status reports evictions");
    assert!(evictions > 0, "the thrash must be visible: {status}");

    // ...while the unbounded server never evicted.
    let status = stdout_of(&submit(&unbounded, &["status"]));
    assert!(
        status.contains("\"session_evictions\": 0"),
        "unbounded never evicts: {status}"
    );
}
