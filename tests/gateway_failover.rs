//! Property suite for the federation gateway: responses through a fleet of
//! three backends are byte-identical to a direct single-server run — even
//! when the backend holding the warm program is SIGKILLed mid-stream — and
//! fingerprint affinity pins each program to exactly one backend while its
//! backend is healthy.
//!
//! Scan responses are timing-free, so every comparison here is exact
//! (no strip needed); the determinism contract this enforces is the same
//! one the CI `gateway-gate` job checks from the shell.

use std::path::Path;

use spec_bench::service_harness::{random_program_text, GatewayProcess, Rng, ServeProcess};
use spec_core::batch::{PanelKind, PanelSpec};
use spec_core::service::{Request, ServiceClient};

const PROGRAMS: usize = 6;

fn specan() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_specan"))
}

fn scan_request(source: &str) -> Request {
    Request::Scan {
        sources: vec![source.to_string()],
        panel: PanelSpec {
            kind: PanelKind::LeakCheck,
            cache_lines: 8,
        },
        json: true,
    }
}

/// The `"programs"` count of a backend's own status document — how many
/// warm sessions it holds.
fn programs_on(addr: &str) -> u64 {
    let mut client = ServiceClient::connect(addr).expect("backend answers status");
    let status = client.call(&Request::Status).expect("status round-trips");
    assert!(status.ok);
    status
        .output
        .split("\"programs\": ")
        .nth(1)
        .and_then(|rest| rest.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|digits| digits.parse().ok())
        .expect("status reports a program count")
}

/// A named gateway counter out of the fleet status document.
fn gateway_counter(status: &str, name: &str) -> u64 {
    status
        .split(&format!("\"{name}\": "))
        .nth(1)
        .and_then(|rest| rest.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|digits| digits.parse().ok())
        .unwrap_or_else(|| panic!("status reports `{name}`: {status}"))
}

/// Fast-failover gateway flags: 100 ms probes, one strike ejects, tight
/// connect deadline — a killed backend must cost milliseconds, not the
/// test's patience.
const GATEWAY_FLAGS: &[&str] = &[
    "--probe-interval-ms",
    "100",
    "--eject-after",
    "1",
    "--connect-timeout-ms",
    "500",
    "--request-timeout-ms",
    "30000",
];

#[test]
fn killing_a_backend_mid_stream_keeps_responses_byte_identical() {
    let mut rng = Rng::new(0xfed_e8a7e);
    let sources: Vec<String> = (0..PROGRAMS)
        .map(|i| random_program_text(&mut rng, &format!("fed{i:02}")))
        .collect();

    // The reference truth: one direct single-server run per program.
    let reference: Vec<String> = {
        let server = ServeProcess::start(specan(), 2);
        let mut client = ServiceClient::connect(server.addr()).expect("reference connects");
        sources
            .iter()
            .map(|source| {
                let response = client.call(&scan_request(source)).expect("reference scan");
                assert!(response.ok, "{:?}", response.error);
                response.output
            })
            .collect()
    };

    // The fleet: three backends behind one gateway.
    let mut backends: Vec<ServeProcess> =
        (0..3).map(|_| ServeProcess::start(specan(), 2)).collect();
    let addrs: Vec<String> = backends.iter().map(|b| b.addr().to_string()).collect();
    let addr_refs: Vec<&str> = addrs.iter().map(String::as_str).collect();
    let gateway = GatewayProcess::start(specan(), 2, &addr_refs, GATEWAY_FLAGS);
    let mut client = ServiceClient::connect(gateway.addr()).expect("gateway connects");

    // Round 0 warms the fleet; every response matches the reference.
    for (source, expected) in sources.iter().zip(&reference) {
        let response = client.call(&scan_request(source)).expect("warm round scan");
        assert!(response.ok, "{:?}", response.error);
        assert_eq!(&response.output, expected, "a routed response diverged");
    }

    // SIGKILL a backend that actually owns warm programs — the failover
    // must re-route (and re-prepare) its share, not just the easy case of
    // killing an idle backend.
    let victim = (0..backends.len())
        .max_by_key(|&i| programs_on(backends[i].addr()))
        .expect("three backends");
    assert!(
        programs_on(backends[victim].addr()) > 0,
        "affinity spread {PROGRAMS} programs over 3 backends; the fullest \
         backend cannot be empty"
    );
    backends[victim].kill();

    // Mid-stream rounds: every program again, twice, against a fleet that
    // just lost a member.  Byte-identity must hold throughout.
    for round in 1..3 {
        for (source, expected) in sources.iter().zip(&reference) {
            let response = client.call(&scan_request(source)).expect("failover scan");
            assert!(response.ok, "round {round}: {:?}", response.error);
            assert_eq!(
                &response.output, expected,
                "round {round}: a failover response diverged from the \
                 single-server reference"
            );
        }
    }

    // The gateway saw the failure: something was rerouted away from its
    // affinity primary, and the dead backend was ejected.
    let status = client.call(&Request::Status).expect("fleet status");
    assert!(status.ok);
    let doc = status.output;
    assert!(
        gateway_counter(&doc, "rerouted") > 0,
        "killing a warm backend must reroute: {doc}"
    );
    assert!(
        gateway_counter(&doc, "ejected") > 0,
        "the dead backend must be ejected: {doc}"
    );
    assert_eq!(
        gateway_counter(&doc, "healthy"),
        2,
        "two backends survive: {doc}"
    );
}

#[test]
fn affinity_pins_a_program_to_one_backend_while_healthy() {
    let mut rng = Rng::new(0xaff_1217);
    let source = random_program_text(&mut rng, "pinned");

    let backends: Vec<ServeProcess> = (0..3).map(|_| ServeProcess::start(specan(), 2)).collect();
    let addrs: Vec<String> = backends.iter().map(|b| b.addr().to_string()).collect();
    let addr_refs: Vec<&str> = addrs.iter().map(String::as_str).collect();
    let gateway = GatewayProcess::start(specan(), 2, &addr_refs, GATEWAY_FLAGS);
    let mut client = ServiceClient::connect(gateway.addr()).expect("gateway connects");

    // The same program four times: every response identical, and exactly
    // one backend ends up holding the warm session — resubmissions landed
    // where the warmth lives instead of scattering over the fleet.
    let mut outputs = Vec::new();
    for _ in 0..4 {
        let response = client.call(&scan_request(&source)).expect("pinned scan");
        assert!(response.ok, "{:?}", response.error);
        outputs.push(response.output);
    }
    assert!(
        outputs.windows(2).all(|w| w[0] == w[1]),
        "repeat responses must be identical"
    );
    let warm: Vec<u64> = backends.iter().map(|b| programs_on(b.addr())).collect();
    assert_eq!(
        warm.iter().sum::<u64>(),
        1,
        "one program, one warm session fleet-wide: {warm:?}"
    );
    assert_eq!(
        warm.iter().filter(|&&w| w > 0).count(),
        1,
        "affinity pins the program to exactly one backend: {warm:?}"
    );

    // While the fleet is healthy nothing is rerouted or retried.
    let status = client.call(&Request::Status).expect("fleet status");
    assert!(status.ok);
    assert_eq!(gateway_counter(&status.output, "routed"), 4);
    assert_eq!(gateway_counter(&status.output, "rerouted"), 0);
    assert_eq!(gateway_counter(&status.output, "retried"), 0);
}
