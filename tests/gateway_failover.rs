//! Property suite for the federation gateway: responses through a fleet of
//! three backends are byte-identical to a direct single-server run — even
//! when the backend holding the warm program is SIGKILLed mid-stream — and
//! fingerprint affinity pins each program to exactly one backend while its
//! backend is healthy.
//!
//! Scan responses are timing-free, so every comparison here is exact
//! (no strip needed); the determinism contract this enforces is the same
//! one the CI `gateway-gate` job checks from the shell.

use std::path::Path;

use spec_bench::service_harness::{random_program_text, GatewayProcess, Rng, ServeProcess};
use spec_core::batch::{PanelKind, PanelSpec};
use spec_core::service::{Request, ServiceClient};

const PROGRAMS: usize = 6;

fn specan() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_specan"))
}

fn scan_request(source: &str) -> Request {
    Request::Scan {
        sources: vec![source.to_string()],
        panel: PanelSpec {
            kind: PanelKind::LeakCheck,
            cache_lines: 8,
        },
        json: true,
    }
}

/// The `"programs"` count of a backend's own status document — how many
/// warm sessions it holds.
fn programs_on(addr: &str) -> u64 {
    let mut client = ServiceClient::connect(addr).expect("backend answers status");
    let status = client.call(&Request::Status).expect("status round-trips");
    assert!(status.ok);
    status
        .output
        .split("\"programs\": ")
        .nth(1)
        .and_then(|rest| rest.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|digits| digits.parse().ok())
        .expect("status reports a program count")
}

/// A named gateway counter out of the fleet status document.
fn gateway_counter(status: &str, name: &str) -> u64 {
    status
        .split(&format!("\"{name}\": "))
        .nth(1)
        .and_then(|rest| rest.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|digits| digits.parse().ok())
        .unwrap_or_else(|| panic!("status reports `{name}`: {status}"))
}

/// Fast-failover gateway flags: 100 ms probes, one strike ejects, tight
/// connect deadline — a killed backend must cost milliseconds, not the
/// test's patience.
const GATEWAY_FLAGS: &[&str] = &[
    "--probe-interval-ms",
    "100",
    "--eject-after",
    "1",
    "--connect-timeout-ms",
    "500",
    "--request-timeout-ms",
    "30000",
];

#[test]
fn killing_a_backend_mid_stream_keeps_responses_byte_identical() {
    let mut rng = Rng::new(0xfed_e8a7e);
    let sources: Vec<String> = (0..PROGRAMS)
        .map(|i| random_program_text(&mut rng, &format!("fed{i:02}")))
        .collect();

    // The reference truth: one direct single-server run per program.
    let reference: Vec<String> = {
        let server = ServeProcess::start(specan(), 2);
        let mut client = ServiceClient::connect(server.addr()).expect("reference connects");
        sources
            .iter()
            .map(|source| {
                let response = client.call(&scan_request(source)).expect("reference scan");
                assert!(response.ok, "{:?}", response.error);
                response.output
            })
            .collect()
    };

    // The fleet: three backends behind one gateway.
    let mut backends: Vec<ServeProcess> =
        (0..3).map(|_| ServeProcess::start(specan(), 2)).collect();
    let addrs: Vec<String> = backends.iter().map(|b| b.addr().to_string()).collect();
    let addr_refs: Vec<&str> = addrs.iter().map(String::as_str).collect();
    let gateway = GatewayProcess::start(specan(), 2, &addr_refs, GATEWAY_FLAGS);
    let mut client = ServiceClient::connect(gateway.addr()).expect("gateway connects");

    // Round 0 warms the fleet; every response matches the reference.
    for (source, expected) in sources.iter().zip(&reference) {
        let response = client.call(&scan_request(source)).expect("warm round scan");
        assert!(response.ok, "{:?}", response.error);
        assert_eq!(&response.output, expected, "a routed response diverged");
    }

    // SIGKILL a backend that actually owns warm programs — the failover
    // must re-route (and re-prepare) its share, not just the easy case of
    // killing an idle backend.
    let victim = (0..backends.len())
        .max_by_key(|&i| programs_on(backends[i].addr()))
        .expect("three backends");
    assert!(
        programs_on(backends[victim].addr()) > 0,
        "affinity spread {PROGRAMS} programs over 3 backends; the fullest \
         backend cannot be empty"
    );
    backends[victim].kill();

    // Mid-stream rounds: every program again, twice, against a fleet that
    // just lost a member.  Byte-identity must hold throughout.
    for round in 1..3 {
        for (source, expected) in sources.iter().zip(&reference) {
            let response = client.call(&scan_request(source)).expect("failover scan");
            assert!(response.ok, "round {round}: {:?}", response.error);
            assert_eq!(
                &response.output, expected,
                "round {round}: a failover response diverged from the \
                 single-server reference"
            );
        }
    }

    // The gateway saw the failure: something was rerouted away from its
    // affinity primary, and the dead backend was ejected.
    let status = client.call(&Request::Status).expect("fleet status");
    assert!(status.ok);
    let doc = status.output;
    assert!(
        gateway_counter(&doc, "rerouted") > 0,
        "killing a warm backend must reroute: {doc}"
    );
    assert!(
        gateway_counter(&doc, "ejected") > 0,
        "the dead backend must be ejected: {doc}"
    );
    assert_eq!(
        gateway_counter(&doc, "healthy"),
        2,
        "two backends survive: {doc}"
    );
}

/// Scrapes the gateway's Prometheus exposition.
fn scrape(client: &mut ServiceClient) -> String {
    let response = client.call(&Request::Metrics).expect("metrics answers");
    assert!(response.ok, "{:?}", response.error);
    response.output
}

/// Polls the gateway until its exposition contains `needle` (the probe
/// loop flips health gauges asynchronously).
fn await_series(client: &mut ServiceClient, needle: &str) -> String {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let exposition = scrape(client);
        if exposition.contains(needle) {
            return exposition;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "gateway never exposed `{needle}`:\n{exposition}"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
}

/// Restarts a backend on a fixed address, retrying while the kernel still
/// holds the port from the previous incarnation.
fn restart_backend_on(addr: &str) -> ServeProcess {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        match std::panic::catch_unwind(|| {
            ServeProcess::start_with_args(specan(), 2, &["--addr", addr])
        }) {
            Ok(server) => return server,
            Err(payload) => {
                if std::time::Instant::now() >= deadline {
                    std::panic::resume_unwind(payload);
                }
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
        }
    }
}

#[test]
fn gateway_metrics_label_backends_and_track_health_transitions() {
    let mut rng = Rng::new(0x3e7_0b5);
    let source = random_program_text(&mut rng, "telemetry");
    let mut backends: Vec<ServeProcess> =
        (0..2).map(|_| ServeProcess::start(specan(), 2)).collect();
    let addrs: Vec<String> = backends.iter().map(|b| b.addr().to_string()).collect();
    let addr_refs: Vec<&str> = addrs.iter().map(String::as_str).collect();
    let gateway = GatewayProcess::start(specan(), 2, &addr_refs, GATEWAY_FLAGS);
    let mut client = ServiceClient::connect(gateway.addr()).expect("gateway connects");

    let response = client.call(&scan_request(&source)).expect("scan routes");
    assert!(response.ok, "{:?}", response.error);

    // One scrape covers the fleet: the gateway's own ledger, a health
    // gauge per backend, and every backend's series relabeled under
    // `backend="H:P"`.
    let exposition = scrape(&mut client);
    assert!(
        exposition.contains("spec_gateway_requests_total{kind=\"scan\",outcome=\"ok\"} 1"),
        "{exposition}"
    );
    for addr in &addrs {
        assert!(
            exposition.contains(&format!(
                "spec_gateway_backend_healthy{{backend=\"{addr}\"}} 1.0"
            )),
            "{exposition}"
        );
        assert!(
            exposition.contains(&format!(
                "spec_requests_total{{backend=\"{addr}\",kind=\"scan\",outcome=\"ok\"}}"
            )),
            "backend series must fold in under its label: {exposition}"
        );
    }
    // Exactly one backend served the scan (affinity), and the relabeled
    // family keeps a single HELP/TYPE pair across both backends.
    let served: u64 = addrs
        .iter()
        .map(|addr| {
            let series =
                format!("spec_requests_total{{backend=\"{addr}\",kind=\"scan\",outcome=\"ok\"}} ");
            exposition
                .lines()
                .find_map(|line| line.strip_prefix(series.as_str()))
                .and_then(|value| value.parse::<u64>().ok())
                .unwrap_or_else(|| panic!("missing series for {addr}: {exposition}"))
        })
        .sum();
    assert_eq!(served, 1, "{exposition}");
    assert_eq!(
        exposition
            .lines()
            .filter(|l| l.starts_with("# TYPE spec_requests_total "))
            .count(),
        1,
        "HELP/TYPE dedupe across backends: {exposition}"
    );

    // Ejection flips the victim's health gauge 1 -> 0 ...
    let victim = addrs[0].clone();
    backends[0].kill();
    await_series(
        &mut client,
        &format!("spec_gateway_backend_healthy{{backend=\"{victim}\"}} 0.0"),
    );

    // ... and a restart on the same address readmits it, 0 -> 1.  The new
    // process gets its own binding: assigning over `backends[0]` would
    // drop the old handle, whose shutdown handshake targets the shared
    // address and would kill the fresh server.
    let _restarted = restart_backend_on(&victim);
    await_series(
        &mut client,
        &format!("spec_gateway_backend_healthy{{backend=\"{victim}\"}} 1.0"),
    );
}

#[test]
fn affinity_pins_a_program_to_one_backend_while_healthy() {
    let mut rng = Rng::new(0xaff_1217);
    let source = random_program_text(&mut rng, "pinned");

    let backends: Vec<ServeProcess> = (0..3).map(|_| ServeProcess::start(specan(), 2)).collect();
    let addrs: Vec<String> = backends.iter().map(|b| b.addr().to_string()).collect();
    let addr_refs: Vec<&str> = addrs.iter().map(String::as_str).collect();
    let gateway = GatewayProcess::start(specan(), 2, &addr_refs, GATEWAY_FLAGS);
    let mut client = ServiceClient::connect(gateway.addr()).expect("gateway connects");

    // The same program four times: every response identical, and exactly
    // one backend ends up holding the warm session — resubmissions landed
    // where the warmth lives instead of scattering over the fleet.
    let mut outputs = Vec::new();
    for _ in 0..4 {
        let response = client.call(&scan_request(&source)).expect("pinned scan");
        assert!(response.ok, "{:?}", response.error);
        outputs.push(response.output);
    }
    assert!(
        outputs.windows(2).all(|w| w[0] == w[1]),
        "repeat responses must be identical"
    );
    let warm: Vec<u64> = backends.iter().map(|b| programs_on(b.addr())).collect();
    assert_eq!(
        warm.iter().sum::<u64>(),
        1,
        "one program, one warm session fleet-wide: {warm:?}"
    );
    assert_eq!(
        warm.iter().filter(|&&w| w > 0).count(),
        1,
        "affinity pins the program to exactly one backend: {warm:?}"
    );

    // While the fleet is healthy nothing is rerouted or retried.
    let status = client.call(&Request::Status).expect("fleet status");
    assert!(status.ok);
    assert_eq!(gateway_counter(&status.output, "routed"), 4);
    assert_eq!(gateway_counter(&status.output, "rerouted"), 0);
    assert_eq!(gateway_counter(&status.output, "retried"), 0);
}
