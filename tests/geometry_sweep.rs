//! Set-associative geometry sweep over the example bundle.
//!
//! The abstract domain supports set-associative caches, but the paper's
//! tables (and, until this suite, the tier-1 tests) only exercised the
//! fully-associative setup.  This sweep runs every example program through
//! `run_suite` at associativities 1, 2, 4 and 8 — holding the set count at
//! 8, so capacity grows with associativity — and snapshot-asserts the
//! deterministic verdict rows.  A change in any number here means the
//! set-associative path of the abstract domain changed behaviour.

use speculative_absint::cache::CacheConfig;
use speculative_absint::core::batch::VERDICT_LABEL;
use speculative_absint::core::{AnalysisOptions, Analyzer};
use speculative_absint::ir::text::parse_program;
use speculative_absint::ir::Program;

const NUM_SETS: usize = 8;
const WAYS: [usize; 4] = [1, 2, 4, 8];

/// One snapshot row: program, ways, then the speculative verdict row's
/// deterministic fields `(must_hits, misses, speculative_misses,
/// unsafe_secret_accesses)` and the derived leak verdict.
type Row = (&'static str, usize, (usize, usize, usize, usize), bool);

/// The pinned behaviour of the example bundle across the sweep.
///
/// Reading the snapshot: `ct_sbox` (constant-time) never leaks at any
/// associativity; `cold_lookup` leaks at every one (its secret-indexed
/// table is never preloaded); `victim` leaks in the direct-mapped geometry
/// — where the preloaded sbox lines conflict-evict each other, so the
/// secret-indexed access is not provably timing-neutral — and becomes
/// clean from 2 ways up, once each set can hold the conflicting lines.
const EXPECTED: &[Row] = &[
    ("cold_lookup", 1, (0, 3, 1, 1), true),
    ("cold_lookup", 2, (0, 3, 1, 1), true),
    ("cold_lookup", 4, (0, 3, 1, 1), true),
    ("cold_lookup", 8, (0, 3, 1, 1), true),
    ("ct_sbox", 1, (1, 4, 0, 0), false),
    ("ct_sbox", 2, (1, 4, 0, 0), false),
    ("ct_sbox", 4, (1, 4, 0, 0), false),
    ("ct_sbox", 8, (1, 4, 0, 0), false),
    ("victim", 1, (0, 10, 2, 1), true),
    ("victim", 2, (1, 9, 2, 0), false),
    ("victim", 4, (1, 9, 2, 0), false),
    ("victim", 8, (1, 9, 2, 0), false),
];

fn example_programs() -> Vec<Program> {
    let mut paths: Vec<_> = std::fs::read_dir("examples/programs")
        .expect("example bundle exists")
        .map(|entry| entry.unwrap().path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "spec"))
        .collect();
    paths.sort();
    paths
        .iter()
        .map(|path| {
            parse_program(&std::fs::read_to_string(path).unwrap())
                .unwrap_or_else(|err| panic!("{}: {err}", path.display()))
        })
        .collect()
}

#[test]
fn set_associative_sweep_matches_snapshot() {
    let mut actual: Vec<Row> = Vec::new();
    let names: Vec<String> = example_programs()
        .iter()
        .map(|p| p.name().to_string())
        .collect();
    for (program, name) in example_programs().iter().zip(&names) {
        let prepared = Analyzer::new().prepare(program);
        for ways in WAYS {
            let cache = CacheConfig::set_associative(NUM_SETS, ways, 64);
            let suite = prepared.run_suite(&[
                (
                    "baseline",
                    AnalysisOptions::builder()
                        .baseline()
                        .cache(cache)
                        .build()
                        .unwrap(),
                ),
                (
                    VERDICT_LABEL,
                    AnalysisOptions::builder().cache(cache).build().unwrap(),
                ),
            ]);
            let report = suite.report();
            let row = report
                .rows
                .iter()
                .find(|row| row.label == VERDICT_LABEL)
                .expect("speculative row exists");
            let name: &'static str = match name.as_str() {
                "cold_lookup" => "cold_lookup",
                "ct_sbox" => "ct_sbox",
                "victim" => "victim",
                other => panic!("unexpected example program `{other}`"),
            };
            actual.push((
                name,
                ways,
                (
                    row.must_hits,
                    row.misses,
                    row.speculative_misses,
                    row.unsafe_secret_accesses,
                ),
                row.unsafe_secret_accesses > 0,
            ));
        }
    }
    assert_eq!(
        actual, EXPECTED,
        "set-associative verdicts drifted; if the change is intended, \
         re-pin the snapshot from this failure's `left` value"
    );
}

/// Associativity only ever helps within a fixed set count: growing the
/// ways must never lose a must-hit guarantee on this bundle.
#[test]
fn more_ways_never_lose_must_hits() {
    for program in example_programs() {
        let prepared = Analyzer::new().prepare(&program);
        let mut previous = None;
        for ways in WAYS {
            let cache = CacheConfig::set_associative(NUM_SETS, ways, 64);
            let result = prepared.run(&AnalysisOptions::builder().cache(cache).build().unwrap());
            let must_hits = result.must_hit_count();
            if let Some(previous) = previous {
                assert!(
                    must_hits >= previous,
                    "{}: {ways} ways lost must-hits ({must_hits} < {previous})",
                    program.name()
                );
            }
            previous = Some(must_hits);
        }
    }
}
