//! Edit-equivalence property suite for the incremental session layer.
//!
//! The contract under test: however a program is edited, running it through
//! a long-lived [`SessionCache`] produces a report **bit-identical** to a
//! fresh `Analyzer::prepare` run — same leak verdicts, same label order,
//! same serialized bytes once the execution-describing fields are stripped.
//! Rename-only edits must additionally *rebind* the previous session
//! (fingerprints ignore names), and edits to one program of a multi-program
//! session must leave every other program's artifacts bound.
//!
//! Like `property_soundness`, the generator is a deterministic xorshift
//! PRNG, so the workspace stays dependency-free and a failure reproduces
//! from the printed case number.

use speculative_absint::cache::CacheConfig;
use speculative_absint::core::batch::ProgramVerdict;
use speculative_absint::core::incremental::SessionCache;
use speculative_absint::core::session::comparison_configs;
use speculative_absint::core::{AnalysisOptions, Analyzer, Report};
use speculative_absint::ir::builder::ProgramBuilder;
use speculative_absint::ir::fingerprint::program_fingerprint;
use speculative_absint::ir::{
    BasicBlock, BranchSemantics, IndexExpr, Inst, MemRef, MemoryRegion, Program, RegionId,
};

const LINES: usize = 8;
const CASES: u64 = 24;

/// Deterministic xorshift64* generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A random diamond-shaped program in the style of `property_soundness`,
/// with a couple of always-present regions so edits have material to work
/// with.
fn random_program(rng: &mut Rng, name: &str) -> Program {
    let mut b = ProgramBuilder::new(name);
    let table = b.region("table", 12 * 64, false);
    let flag = b.region("flag", 8, false);
    let _key = b.secret_region("key", 8);
    let entry = b.entry_block("entry");
    for i in 0..1 + rng.below(6) {
        b.load(entry, table, IndexExpr::Const((i % 12) * 64));
    }
    b.load(entry, flag, IndexExpr::Const(0));
    let mut current = entry;
    for d in 0..rng.below(3) {
        let then_bb = b.block(format!("then{d}"));
        let else_bb = b.block(format!("else{d}"));
        let join = b.block(format!("join{d}"));
        b.data_branch(
            current,
            vec![MemRef::at(flag, 0)],
            BranchSemantics::InputBit {
                bit: (d % 8) as u32,
            },
            then_bb,
            else_bb,
        );
        for _ in 0..rng.below(3) {
            b.load(then_bb, table, IndexExpr::Const(rng.below(12) * 64));
        }
        b.jump(then_bb, join);
        for _ in 0..rng.below(3) {
            b.load(else_bb, table, IndexExpr::Const(rng.below(12) * 64));
        }
        b.jump(else_bb, join);
        current = join;
    }
    if rng.below(2) == 1 {
        b.load(current, table, IndexExpr::secret(64));
    }
    b.ret(current);
    b.finish().expect("generated program is well-formed")
}

/// Rebuilds a program from edited parts.
fn rebuild(p: &Program, regions: Vec<MemoryRegion>, blocks: Vec<BasicBlock>) -> Program {
    Program::new(p.name(), regions, blocks, p.entry()).expect("edited program stays valid")
}

/// Applies one random single-function edit and describes it.
fn apply_edit(rng: &mut Rng, p: &Program) -> (Program, &'static str) {
    let mut blocks = p.blocks().to_vec();
    let mut regions = p.regions().to_vec();
    let block = rng.below(blocks.len() as u64) as usize;
    let table = RegionId::from_raw(0);
    match rng.below(6) {
        // Insert a random instruction at a random position.
        0 => {
            let inst = match rng.below(4) {
                0 => Inst::Load(MemRef::at(table, rng.below(12) * 64)),
                1 => Inst::Store(MemRef::at(table, rng.below(12) * 64)),
                2 => Inst::Compute {
                    latency: rng.below(5) as u32,
                },
                _ => Inst::Nop,
            };
            let at = rng.below(blocks[block].insts.len() as u64 + 1) as usize;
            blocks[block].insts.insert(at, inst);
            (rebuild(p, regions, blocks), "insert")
        }
        // Delete an instruction somewhere (if one exists).
        1 => {
            if let Some(block) = blocks.iter_mut().find(|b| !b.insts.is_empty()) {
                let at = rng.below(block.insts.len() as u64) as usize;
                block.insts.remove(at);
            }
            (rebuild(p, regions, blocks), "delete")
        }
        // Reorder: swap two instructions of one block.
        2 => {
            if let Some(block) = blocks.iter_mut().find(|b| b.insts.len() >= 2) {
                let i = rng.below(block.insts.len() as u64) as usize;
                let j = rng.below(block.insts.len() as u64) as usize;
                block.insts.swap(i, j);
            }
            (rebuild(p, regions, blocks), "reorder")
        }
        // Rename every block label and region: a structural no-op.
        3 => {
            for (i, block) in blocks.iter_mut().enumerate() {
                block.name = if rng.below(4) == 0 {
                    None
                } else {
                    Some(format!("relabel{i}"))
                };
            }
            for (i, region) in regions.iter_mut().enumerate() {
                region.name = format!("renamed{i}");
            }
            (rebuild(p, regions, blocks), "rename")
        }
        // Retarget a constant offset.
        4 => {
            if let Some(block) = blocks.iter_mut().find(|b| {
                b.insts
                    .iter()
                    .any(|i| matches!(i, Inst::Load(m) if m.index.is_static()))
            }) {
                for inst in &mut block.insts {
                    if let Inst::Load(m) = inst {
                        if m.index.is_static() {
                            *inst = Inst::Load(MemRef::at(m.region, rng.below(12) * 64));
                            break;
                        }
                    }
                }
            }
            (rebuild(p, regions, blocks), "retarget")
        }
        // Grow a region (changes the memory layout).
        _ => {
            regions[0].size_bytes += 64;
            (rebuild(p, regions, blocks), "grow-region")
        }
    }
}

fn configs() -> Vec<(String, AnalysisOptions)> {
    comparison_configs(CacheConfig::fully_associative(LINES, 64))
}

/// The deterministic report of a fresh, session-free analysis.
fn fresh_report(program: &Program) -> Report {
    Analyzer::new()
        .prepare(program)
        .run_suite(&configs())
        .report()
        .without_timing()
}

#[test]
fn incremental_reports_are_bit_identical_to_fresh_runs() {
    let mut rng = Rng::new(0x5eed_1001);
    let configs = configs();
    for case in 0..CASES {
        let mut session = SessionCache::new();
        // A multi-program session: the edit below touches exactly one.
        let programs: Vec<Program> = (0..3)
            .map(|i| random_program(&mut rng, &format!("p{i}")))
            .collect();
        for program in &programs {
            session.update(program).prepared.run_suite(&configs);
        }
        let reused_before = session.stats().reused;

        let victim = rng.below(3) as usize;
        let (edited, what) = apply_edit(&mut rng, &programs[victim]);
        let structurally_same =
            program_fingerprint(&edited) == program_fingerprint(&programs[victim]);

        let update = session.update(&edited);
        assert_eq!(
            update.reused, structurally_same,
            "case {case} ({what}): reuse must track fingerprint equality exactly"
        );
        if what == "rename" {
            assert!(
                update.reused,
                "case {case}: renames must never invalidate the session"
            );
        }
        if let Some(diff) = &update.diff {
            assert_eq!(
                diff.is_identical(),
                structurally_same,
                "case {case} ({what}): diff identity must agree with the fingerprint"
            );
        }

        // The incremental report is bit-identical to a fresh analysis —
        // rows, label order, serialized bytes.
        let incremental = update
            .prepared
            .run_suite(&configs)
            .report()
            .without_timing();
        let fresh = fresh_report(&edited);
        assert_eq!(incremental, fresh, "case {case} ({what})");
        assert_eq!(
            incremental.to_json(),
            fresh.to_json(),
            "case {case} ({what}): serialized bytes must match"
        );
        let labels: Vec<&str> = incremental.rows.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "baseline",
                "speculative",
                "merge-at-rollback",
                "no-shadow",
                "static-depth"
            ],
            "case {case}: label order"
        );
        // Leak verdicts agree (the batch layer's rule applied to both).
        let fingerprint = program_fingerprint(&edited);
        assert_eq!(
            ProgramVerdict::from_report(incremental, fingerprint).leak,
            ProgramVerdict::from_report(fresh, fingerprint).leak,
            "case {case} ({what})"
        );

        // The other programs' sessions were not disturbed: re-parsing them
        // rebinds every prepared artifact.
        for (i, program) in programs.iter().enumerate() {
            if i != victim {
                let other = session.update(program);
                assert!(other.reused, "case {case}: untouched program {i} rebinds");
                let report = other.prepared.run_suite(&configs).report().without_timing();
                assert_eq!(report, fresh_report(program), "case {case}: program {i}");
            }
        }
        assert!(
            session.stats().reused >= reused_before + 2,
            "case {case}: both untouched programs must count as reused"
        );
    }
}

/// Editing one program of a prepared multi-program session reuses all
/// cached artifacts of the untouched programs — the acceptance criterion,
/// asserted through the cache counters themselves.
#[test]
fn editing_one_program_reuses_untouched_artifacts() {
    let mut rng = Rng::new(0x5eed_1002);
    let configs = configs();
    let mut session = SessionCache::new();
    let programs: Vec<Program> = (0..3)
        .map(|i| random_program(&mut rng, &format!("q{i}")))
        .collect();
    for program in &programs {
        session.update(program).prepared.run_suite(&configs);
    }
    let baseline_stats: Vec<_> = programs
        .iter()
        .map(|p| session.get(p.name()).unwrap().cache_stats())
        .collect();

    // Edit q1 only; rerun the whole bundle through the session.
    let (edited, _) = apply_edit(&mut rng, &programs[1]);
    for program in [&programs[0], &edited, &programs[2]] {
        session.update(program).prepared.run_suite(&configs);
    }

    for (i, program) in programs.iter().enumerate() {
        let stats = session.get(program.name()).unwrap().cache_stats();
        if i == 1 {
            continue;
        }
        // Untouched programs kept their PreparedProgram: the second suite
        // hit the memoized artifacts instead of rebuilding them.
        assert_eq!(
            stats.core_misses, baseline_stats[i].core_misses,
            "program {i}: no unroll variant was rebuilt"
        );
        assert_eq!(
            stats.amap_misses, baseline_stats[i].amap_misses,
            "program {i}: no address map was rebuilt"
        );
        assert_eq!(
            stats.vcfg_misses, baseline_stats[i].vcfg_misses,
            "program {i}: no VCFG was rebuilt"
        );
        assert_eq!(
            stats.round_misses, baseline_stats[i].round_misses,
            "program {i}: no fixpoint round was re-solved"
        );
        assert!(
            stats.round_hits > baseline_stats[i].round_hits,
            "program {i}: the second suite replayed memoized rounds"
        );
    }
    assert_eq!(session.stats().reused, 2);
    assert_eq!(session.stats().inserted, 3);
}

/// A bounded round cache changes memory behaviour, never results: the same
/// edit sequence through a capacity-1 session matches fresh runs.
#[test]
fn bounded_sessions_stay_equivalent_under_eviction() {
    let mut rng = Rng::new(0x5eed_1003);
    let configs = configs();
    let analyzer = Analyzer::new().round_cache_capacity(std::num::NonZeroUsize::MIN);
    let mut session = SessionCache::with_analyzer(analyzer);
    let mut program = random_program(&mut rng, "evicted");
    for step in 0..4 {
        let update = session.update(&program);
        let report = update
            .prepared
            .run_suite(&configs)
            .report()
            .without_timing();
        assert_eq!(report, fresh_report(&program), "step {step}");
        let stats = update.prepared.cache_stats();
        assert!(
            stats.round_evictions > 0,
            "step {step}: capacity 1 must evict across a 5-config panel"
        );
        (program, _) = apply_edit(&mut rng, &program);
    }
}
