//! Property-based tests: the speculative analysis is sound for randomly
//! generated programs, and the core cache-domain operations satisfy their
//! lattice laws on random states.

use proptest::prelude::*;

use speculative_absint::cache::{AbstractCacheState, CacheAccess, CacheConfig, MemBlock};
use speculative_absint::core::{AnalysisOptions, CacheAnalysis};
use speculative_absint::ir::builder::ProgramBuilder;
use speculative_absint::ir::{BranchSemantics, IndexExpr, MemRef, Program};
use speculative_absint::sim::{PredictorKind, SimConfig, SimInput, Simulator};

const LINES: usize = 8;

/// A compact description of a random program: a preload size, a list of
/// diamonds (each arm's accesses) and a list of final re-reads.
#[derive(Clone, Debug)]
struct RandomProgram {
    preload_blocks: u64,
    diamonds: Vec<(Vec<u64>, Vec<u64>)>,
    rereads: Vec<u64>,
    tail_secret_access: bool,
}

fn random_program_strategy() -> impl Strategy<Value = RandomProgram> {
    let arm = proptest::collection::vec(0u64..12, 0..3);
    (
        1u64..10,
        proptest::collection::vec((arm.clone(), arm), 0..4),
        proptest::collection::vec(0u64..10, 0..4),
        any::<bool>(),
    )
        .prop_map(
            |(preload_blocks, diamonds, rereads, tail_secret_access)| RandomProgram {
                preload_blocks,
                diamonds,
                rereads,
                tail_secret_access,
            },
        )
}

fn build(desc: &RandomProgram) -> Program {
    let mut b = ProgramBuilder::new("random");
    let table = b.region("table", 12 * 64, false);
    let scratch = b.region("scratch", 12 * 64, false);
    let flag = b.region("flag", 8, false);
    let entry = b.entry_block("entry");
    b.load_sweep(entry, table, 0, 64, desc.preload_blocks);
    b.load(entry, flag, IndexExpr::Const(0));
    let mut current = entry;
    for (i, (then_arm, else_arm)) in desc.diamonds.iter().enumerate() {
        let then_bb = b.block(format!("then{i}"));
        let else_bb = b.block(format!("else{i}"));
        let join = b.block(format!("join{i}"));
        b.data_branch(
            current,
            vec![MemRef::at(flag, 0)],
            BranchSemantics::InputBit { bit: (i % 8) as u32 },
            then_bb,
            else_bb,
        );
        for &block in then_arm {
            b.load(then_bb, scratch, IndexExpr::Const(block * 64));
        }
        b.jump(then_bb, join);
        for &block in else_arm {
            b.load(else_bb, scratch, IndexExpr::Const(block * 64));
        }
        b.jump(else_bb, join);
        current = join;
    }
    for &block in &desc.rereads {
        b.load(current, table, IndexExpr::Const(block * 64));
    }
    if desc.tail_secret_access {
        b.load(current, table, IndexExpr::secret(64));
    }
    b.ret(current);
    b.finish().expect("generated program is well-formed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness: every access the speculative analysis declares an
    /// observable must-hit actually hits in every committed execution, even
    /// with an adversarial branch predictor.
    #[test]
    fn must_hits_never_miss_concretely(desc in random_program_strategy(),
                                       input_value in 0u64..16,
                                       secret in 0u64..16) {
        let program = build(&desc);
        let cache = CacheConfig::fully_associative(LINES, 64);
        let result = CacheAnalysis::new(AnalysisOptions::speculative().with_cache(cache))
            .run(&program);
        for predictor in [PredictorKind::AlwaysWrong, PredictorKind::TwoBit] {
            let report = Simulator::new(
                SimConfig::default().with_cache(cache).with_predictor(predictor),
            )
            .run(&result.program, &SimInput::new(input_value, secret));
            for event in report.committed_events() {
                if event.hit {
                    continue;
                }
                if let Some(access) = result.access_at(event.block, event.inst_index) {
                    prop_assert!(
                        !access.observable_hit,
                        "access {}[{}] declared must-hit but missed concretely",
                        access.region_name,
                        access.inst_index
                    );
                }
            }
        }
    }

    /// The speculative analysis never claims more must-hits than the
    /// non-speculative baseline (it only removes guarantees).
    #[test]
    fn speculation_only_removes_guarantees(desc in random_program_strategy()) {
        let program = build(&desc);
        let cache = CacheConfig::fully_associative(LINES, 64);
        let base = CacheAnalysis::new(AnalysisOptions::non_speculative().with_cache(cache))
            .run(&program);
        let spec = CacheAnalysis::new(AnalysisOptions::speculative().with_cache(cache))
            .run(&program);
        prop_assert!(spec.miss_count() >= base.miss_count());
        prop_assert_eq!(spec.access_count(), base.access_count());
    }

    /// Join is commutative, idempotent, and an upper bound w.r.t. must-hits
    /// on random abstract cache states.
    #[test]
    fn abstract_join_laws(seq_a in proptest::collection::vec(0u64..16, 0..12),
                          seq_b in proptest::collection::vec(0u64..16, 0..12)) {
        let config = CacheConfig::fully_associative(4, 64);
        let region = speculative_absint::ir::RegionId::from_raw(0);
        let build_state = |seq: &[u64]| {
            let mut s = AbstractCacheState::empty_cache(&config, true);
            for &i in seq {
                s.access(&config, &CacheAccess::Precise(MemBlock::new(region, i)), |_| 0);
            }
            s
        };
        let a = build_state(&seq_a);
        let b = build_state(&seq_b);

        let mut ab = a.clone();
        ab.join_in_place(&b);
        let mut ba = b.clone();
        ba.join_in_place(&a);
        prop_assert_eq!(&ab, &ba, "join is commutative");

        let mut aa = a.clone();
        prop_assert!(!aa.join_in_place(&a), "join is idempotent");

        // Upper bound: a must-hit in the join is a must-hit in both inputs.
        for i in 0..16 {
            let block = MemBlock::new(region, i);
            if ab.is_must_hit(block) {
                prop_assert!(a.is_must_hit(block) && b.is_must_hit(block));
            }
        }
    }

    /// The concrete cache never reports a hit for a line that was not
    /// previously accessed, and its resident set never exceeds capacity.
    #[test]
    fn concrete_cache_invariants(accesses in proptest::collection::vec(0u64..64, 1..200)) {
        use speculative_absint::cache::ConcreteCache;
        let mut cache = ConcreteCache::new(CacheConfig::set_associative(4, 2, 64));
        let mut seen = std::collections::HashSet::new();
        for &line in &accesses {
            let outcome = cache.access(line);
            if outcome.is_hit() {
                prop_assert!(seen.contains(&line));
            }
            seen.insert(line);
            prop_assert!(cache.resident_lines() <= 8);
        }
        prop_assert_eq!(cache.hits() + cache.misses(), accesses.len() as u64);
    }
}
