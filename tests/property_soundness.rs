//! Property-based tests: the speculative analysis is sound for randomly
//! generated programs, and the core cache-domain operations satisfy their
//! lattice laws on random states.
//!
//! The generator is a small deterministic xorshift PRNG rather than an
//! external property-testing crate, so the workspace builds offline; a
//! failing case can be reproduced from the printed seed.

use speculative_absint::cache::{AbstractCacheState, CacheAccess, CacheConfig, MemBlock};
use speculative_absint::core::{AnalysisOptions, CacheAnalysis};
use speculative_absint::ir::builder::ProgramBuilder;
use speculative_absint::ir::{BranchSemantics, IndexExpr, MemRef, Program};
use speculative_absint::sim::{PredictorKind, SimConfig, SimInput, Simulator};

const LINES: usize = 8;
const CASES: u64 = 48;

/// Deterministic xorshift64* generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    fn vec(&mut self, max_len: u64, max_value: u64) -> Vec<u64> {
        let len = self.below(max_len + 1);
        (0..len).map(|_| self.below(max_value)).collect()
    }
}

/// A compact description of a random program: a preload size, a list of
/// diamonds (each arm's accesses) and a list of final re-reads.
#[derive(Clone, Debug)]
struct RandomProgram {
    preload_blocks: u64,
    diamonds: Vec<(Vec<u64>, Vec<u64>)>,
    rereads: Vec<u64>,
    tail_secret_access: bool,
}

fn random_program(rng: &mut Rng) -> RandomProgram {
    RandomProgram {
        preload_blocks: 1 + rng.below(9),
        diamonds: (0..rng.below(4))
            .map(|_| (rng.vec(2, 12), rng.vec(2, 12)))
            .collect(),
        rereads: rng.vec(3, 10),
        tail_secret_access: rng.below(2) == 1,
    }
}

fn build(desc: &RandomProgram) -> Program {
    let mut b = ProgramBuilder::new("random");
    let table = b.region("table", 12 * 64, false);
    let scratch = b.region("scratch", 12 * 64, false);
    let flag = b.region("flag", 8, false);
    let entry = b.entry_block("entry");
    b.load_sweep(entry, table, 0, 64, desc.preload_blocks);
    b.load(entry, flag, IndexExpr::Const(0));
    let mut current = entry;
    for (i, (then_arm, else_arm)) in desc.diamonds.iter().enumerate() {
        let then_bb = b.block(format!("then{i}"));
        let else_bb = b.block(format!("else{i}"));
        let join = b.block(format!("join{i}"));
        b.data_branch(
            current,
            vec![MemRef::at(flag, 0)],
            BranchSemantics::InputBit {
                bit: (i % 8) as u32,
            },
            then_bb,
            else_bb,
        );
        for &block in then_arm {
            b.load(then_bb, scratch, IndexExpr::Const(block * 64));
        }
        b.jump(then_bb, join);
        for &block in else_arm {
            b.load(else_bb, scratch, IndexExpr::Const(block * 64));
        }
        b.jump(else_bb, join);
        current = join;
    }
    for &block in &desc.rereads {
        b.load(current, table, IndexExpr::Const(block * 64));
    }
    if desc.tail_secret_access {
        b.load(current, table, IndexExpr::secret(64));
    }
    b.ret(current);
    b.finish().expect("generated program is well-formed")
}

fn speculative_options(cache: CacheConfig) -> AnalysisOptions {
    AnalysisOptions::builder().cache(cache).build().unwrap()
}

fn baseline_options(cache: CacheConfig) -> AnalysisOptions {
    AnalysisOptions::builder()
        .baseline()
        .cache(cache)
        .build()
        .unwrap()
}

/// Soundness: every access the speculative analysis declares an observable
/// must-hit actually hits in every committed execution, even with an
/// adversarial branch predictor.
#[test]
fn must_hits_never_miss_concretely() {
    let mut rng = Rng::new(0x5eed_0001);
    for case in 0..CASES {
        let desc = random_program(&mut rng);
        let input_value = rng.below(16);
        let secret = rng.below(16);
        let program = build(&desc);
        let cache = CacheConfig::fully_associative(LINES, 64);
        let result = CacheAnalysis::new(speculative_options(cache)).run(&program);
        for predictor in [PredictorKind::AlwaysWrong, PredictorKind::TwoBit] {
            let report = Simulator::new(
                SimConfig::default()
                    .with_cache(cache)
                    .with_predictor(predictor),
            )
            .run(&result.program, &SimInput::new(input_value, secret));
            for event in report.committed_events() {
                if event.hit {
                    continue;
                }
                if let Some(access) = result.access_at(event.block, event.inst_index) {
                    assert!(
                        !access.observable_hit,
                        "case {case} ({desc:?}): access {}[{}] declared must-hit but missed \
                         concretely",
                        access.region_name, access.inst_index
                    );
                }
            }
        }
    }
}

/// The speculative analysis never claims more must-hits than the
/// non-speculative baseline (it only removes guarantees).
#[test]
fn speculation_only_removes_guarantees() {
    let mut rng = Rng::new(0x5eed_0002);
    for case in 0..CASES {
        let desc = random_program(&mut rng);
        let program = build(&desc);
        let cache = CacheConfig::fully_associative(LINES, 64);
        let base = CacheAnalysis::new(baseline_options(cache)).run(&program);
        let spec = CacheAnalysis::new(speculative_options(cache)).run(&program);
        assert!(
            spec.miss_count() >= base.miss_count(),
            "case {case} ({desc:?}): speculation removed a miss"
        );
        assert_eq!(spec.access_count(), base.access_count(), "case {case}");
    }
}

/// Join is commutative, idempotent, and an upper bound w.r.t. must-hits on
/// random abstract cache states.
#[test]
fn abstract_join_laws() {
    let mut rng = Rng::new(0x5eed_0003);
    let config = CacheConfig::fully_associative(4, 64);
    let region = speculative_absint::ir::RegionId::from_raw(0);
    for case in 0..CASES {
        let seq_a = rng.vec(11, 16);
        let seq_b = rng.vec(11, 16);
        let build_state = |seq: &[u64]| {
            let mut s = AbstractCacheState::empty_cache(&config, true);
            for &i in seq {
                s.access(
                    &config,
                    &CacheAccess::Precise(MemBlock::new(region, i)),
                    |_| 0,
                );
            }
            s
        };
        let a = build_state(&seq_a);
        let b = build_state(&seq_b);

        let mut ab = a.clone();
        ab.join_in_place(&b);
        let mut ba = b.clone();
        ba.join_in_place(&a);
        assert_eq!(&ab, &ba, "case {case}: join is commutative");

        let mut aa = a.clone();
        assert!(!aa.join_in_place(&a), "case {case}: join is idempotent");

        // Upper bound: a must-hit in the join is a must-hit in both inputs.
        for i in 0..16 {
            let block = MemBlock::new(region, i);
            if ab.is_must_hit(block) {
                assert!(
                    a.is_must_hit(block) && b.is_must_hit(block),
                    "case {case}: join invented a must-hit"
                );
            }
        }
    }
}

/// The concrete cache never reports a hit for a line that was not previously
/// accessed, and its resident set never exceeds capacity.
#[test]
fn concrete_cache_invariants() {
    use speculative_absint::cache::ConcreteCache;
    let mut rng = Rng::new(0x5eed_0004);
    for case in 0..CASES {
        let accesses: Vec<u64> = (0..1 + rng.below(200)).map(|_| rng.below(64)).collect();
        let mut cache = ConcreteCache::new(CacheConfig::set_associative(4, 2, 64));
        let mut seen = std::collections::HashSet::new();
        for &line in &accesses {
            let outcome = cache.access(line);
            if outcome.is_hit() {
                assert!(seen.contains(&line), "case {case}: hit on a cold line");
            }
            seen.insert(line);
            assert!(
                cache.resident_lines() <= 8,
                "case {case}: capacity exceeded"
            );
        }
        assert_eq!(
            cache.hits() + cache.misses(),
            accesses.len() as u64,
            "case {case}"
        );
    }
}
