//! Property suite for the analysis service: for random programs × random
//! edits, `specan submit` responses from a **warm** server are
//! byte-identical — after the timing strip — to fresh one-shot `specan
//! analyze`/`scan` runs.
//!
//! The server process stays up across every case, so its shared
//! `SessionCache` accumulates warm `PreparedProgram`s and the edits
//! exercise fingerprint invalidation, not just cold paths.  Scan reports
//! are timing-free, so those comparisons are exact; `analyze` output
//! carries per-run wall clocks, which the strip zeroes on both sides
//! (mirroring what the CI gates' `sed` does).
//!
//! Like `property_soundness`, the generator is a deterministic xorshift
//! PRNG, so a failure reproduces from the printed case number.

use std::path::Path;
use std::process::{Command, Output};

use spec_bench::service_harness::{
    random_program_text, strip_analyze_timing, Rng, Scratch, ServeProcess,
};

const CASES: u64 = 6;

fn specan(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_specan"))
        .args(args)
        .output()
        .expect("specan runs")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).unwrap()
}

/// A `specan serve` child on an ephemeral port (shared harness), plus a
/// `specan submit` runner bound to its address.
struct Server(ServeProcess);

impl Server {
    fn start() -> Self {
        Self(ServeProcess::start(
            Path::new(env!("CARGO_BIN_EXE_specan")),
            2,
        ))
    }

    fn submit(&self, args: &[&str]) -> Output {
        let mut full = vec!["submit", "--addr", self.0.addr()];
        full.extend_from_slice(args);
        specan(&full)
    }
}

fn path_str(path: &Path) -> &str {
    path.to_str().expect("scratch paths are UTF-8")
}

#[test]
fn warm_server_responses_match_fresh_one_shot_runs() {
    let server = Server::start();
    let scratch = Scratch::new("specan-service-equiv");
    let mut rng = Rng::new(0x5eca_2024);
    let dir = path_str(scratch.dir()).to_string();

    // Two programs live in the bundle for the whole test; each case edits
    // one of them in place, so the server's cache sees a mix of warm
    // rebinds and fingerprint invalidations every round.
    scratch.write("alpha.spec", &random_program_text(&mut rng, "alpha"));
    scratch.write("beta.spec", &random_program_text(&mut rng, "beta"));

    for case in 0..CASES {
        // Randomly edit one program (a regeneration is an in-place edit);
        // the other stays warm.
        let victim = if rng.below(2) == 0 { "alpha" } else { "beta" };
        let edited = random_program_text(&mut rng, victim);
        let victim_path = scratch.write(&format!("{victim}.spec"), &edited);
        let victim_path = path_str(&victim_path);

        // analyze: warm server vs fresh one-shot, byte-identical after the
        // timing strip.  Submit twice so at least one response comes from a
        // fully warm (fingerprint-rebound) session.
        let fresh = specan(&["analyze", victim_path, "--cache-lines", "8", "--json"]);
        assert_eq!(fresh.status.code(), Some(0), "case {case}: fresh analyze");
        for round in 0..2 {
            let served = server.submit(&["analyze", victim_path, "--cache-lines", "8", "--json"]);
            assert_eq!(
                served.status.code(),
                Some(0),
                "case {case}.{round}: served analyze ({})",
                String::from_utf8_lossy(&served.stderr)
            );
            assert_eq!(
                strip_analyze_timing(&stdout_of(&served)),
                strip_analyze_timing(&stdout_of(&fresh)),
                "case {case}.{round}: analyze responses must match the one-shot run"
            );
        }

        // scan: reports are timing-free, so the comparison is exact — and
        // the exit code (leak gate) must agree too.
        let fresh = specan(&["scan", &dir, "--cache-lines", "8", "--json", "--in-process"]);
        let served = server.submit(&["scan", &dir, "--cache-lines", "8", "--json"]);
        assert_eq!(
            served.status.code(),
            fresh.status.code(),
            "case {case}: scan exit codes must agree"
        );
        assert_eq!(
            stdout_of(&served),
            stdout_of(&fresh),
            "case {case}: scan responses must be byte-identical"
        );
    }

    // The server really was warm: its session counters saw reuse.
    let status = server.submit(&["status"]);
    let status = stdout_of(&status);
    assert!(
        status.contains("\"programs\": 2"),
        "both programs live in the cache: {status}"
    );
    let reused: u64 = status
        .split("\"reused\": ")
        .nth(1)
        .and_then(|rest| rest.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|digits| digits.parse().ok())
        .expect("status reports reuse");
    assert!(reused > 0, "warm sessions must be rebound: {status}");
}

#[test]
fn rename_only_edits_render_current_names() {
    let server = Server::start();
    let scratch = Scratch::new("specan-service-equiv");
    let source = "program rn\nregion table 768\nregion flag 8\n\nblock main entry:\n  \
                  load table[0]\n  load flag[0]\n  load table[secret*64]\n  ret\n";
    let path = scratch.write("rn.spec", source);
    let path = path_str(&path);
    let served = server.submit(&["analyze", path, "--cache-lines", "8", "--json"]);
    assert_eq!(served.status.code(), Some(0));

    // Rename the region everywhere: the structural fingerprint is
    // name-free, so the session rebinds — but analyze output embeds the
    // names, and the server must render the *current* ones, exactly like a
    // fresh one-shot run.
    let renamed = source.replace("table", "lut");
    scratch.write("rn.spec", &renamed);
    let served = server.submit(&["analyze", path, "--cache-lines", "8", "--json"]);
    assert_eq!(served.status.code(), Some(0));
    let fresh = specan(&["analyze", path, "--cache-lines", "8", "--json"]);
    assert_eq!(
        strip_analyze_timing(&stdout_of(&served)),
        strip_analyze_timing(&stdout_of(&fresh)),
        "a rename-only edit must not replay the previous names"
    );
    assert!(stdout_of(&served).contains("\"lut\""));
    assert!(!stdout_of(&served).contains("\"table\""));

    // The swapped entry is warm again for the next unchanged submission.
    let again = server.submit(&["analyze", path, "--cache-lines", "8", "--json"]);
    assert_eq!(
        strip_analyze_timing(&stdout_of(&again)),
        strip_analyze_timing(&stdout_of(&served))
    );
}

#[test]
fn submit_rejects_flags_that_cannot_travel() {
    let server = Server::start();
    let out = server.submit(&["analyze", "x.spec", "--shard", "1/2"]);
    assert_eq!(out.status.code(), Some(2));
    let out = server.submit(&["analyze", "x.spec", "--incremental"]);
    assert_eq!(out.status.code(), Some(2));
    let out = server.submit(&["scan", ".", "--jobs", "4"]);
    assert_eq!(out.status.code(), Some(2));
    let out = server.submit(&["leaks", "x.spec"]);
    assert_eq!(out.status.code(), Some(2), "leaks is not served");
}

#[test]
fn compare_submission_matches_one_shot_output() {
    let server = Server::start();
    let scratch = Scratch::new("specan-service-equiv");
    let mut rng = Rng::new(0xc0_fee);
    let path = scratch.write("gamma.spec", &random_program_text(&mut rng, "gamma"));
    let path = path_str(&path);

    // Single-file compare carries wall clocks and cache counters; strip
    // the JSON clock fields and the session_cache stanza on both sides.
    let strip = |out: &str| -> String {
        out.lines()
            .filter(|line| !line.contains("\"session_cache\""))
            .filter(|line| !line.contains("\"suite_elapsed_secs\""))
            .map(|line| {
                if let Some(at) = line.find("\"time_secs\": ") {
                    format!("{}\"time_secs\": 0}}", &line[..at])
                } else {
                    line.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    let fresh = specan(&["compare", path, "--cache-lines", "8", "--json"]);
    let served = server.submit(&["compare", path, "--cache-lines", "8", "--json"]);
    assert_eq!(served.status.code(), Some(0));
    assert_eq!(strip(&stdout_of(&served)), strip(&stdout_of(&fresh)));
}
