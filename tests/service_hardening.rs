//! Regression suite for the service-client hardening: bounded waits
//! against hung servers, and honest accounting when a pipelined connection
//! dies with requests still in flight.
//!
//! Both cases drive the real `specan submit` binary against in-test fake
//! servers — a listener that accepts and never answers (the SIGSTOPped
//! backend), and one that answers the first pipelined request and then
//! drops the connection (the mid-stream crash).

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpListener;
use std::process::{Command, Output};
use std::time::{Duration, Instant};

use spec_bench::service_harness::Scratch;

fn specan(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_specan"))
        .args(args)
        .output()
        .expect("specan runs")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn read_timeout_bounds_a_submit_against_a_hung_server() {
    // A server that accepts the connection and reads the request but never
    // writes a byte back — the protocol-level shape of a hung or
    // SIGSTOPped `specan serve`.
    let listener = TcpListener::bind("127.0.0.1:0").expect("listener binds");
    let addr = listener.local_addr().expect("local addr").to_string();
    std::thread::spawn(move || {
        if let Ok((stream, _)) = listener.accept() {
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            let _ = reader.read_line(&mut line);
            // Hold the socket open, silently, longer than any deadline the
            // client could be waiting under.
            std::thread::sleep(Duration::from_secs(30));
        }
    });

    // Without `--read-timeout-ms` this call blocked forever; with it the
    // wait is bounded and the failure is an ordinary error exit.
    let start = Instant::now();
    let out = specan(&[
        "submit",
        "--addr",
        &addr,
        "--read-timeout-ms",
        "300",
        "status",
    ]);
    let elapsed = start.elapsed();
    assert_eq!(out.status.code(), Some(2), "a timed-out submit exits 2");
    assert!(
        elapsed < Duration::from_secs(10),
        "the read deadline must bound the wait (took {elapsed:?})"
    );
    assert!(
        stderr_of(&out).contains("request failed"),
        "the failure names the request: {}",
        stderr_of(&out)
    );
}

#[test]
fn connect_timeout_is_accepted_on_a_live_path() {
    // The deadline flags must not break the ordinary success path: against
    // a server that answers immediately, a submit with tight deadlines
    // still fails only because no server speaks the protocol here — use a
    // refused port so the connect error is immediate and deterministic.
    let listener = TcpListener::bind("127.0.0.1:0").expect("listener binds");
    let addr = listener.local_addr().expect("local addr").to_string();
    drop(listener); // the port is now closed: connect is refused, fast
    let start = Instant::now();
    let out = specan(&[
        "submit",
        "--addr",
        &addr,
        "--connect-timeout-ms",
        "500",
        "status",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "a refused connect under a deadline fails fast"
    );
    assert!(
        stderr_of(&out).contains("cannot connect"),
        "the failure names the connection: {}",
        stderr_of(&out)
    );
}

#[test]
fn submit_names_the_lost_ids_when_the_connection_dies_mid_pipeline() {
    // A server that reads all three pipelined analyze requests, answers
    // only the first (id 0), and drops the connection — the wire shape of
    // a backend crashing mid-stream.
    let listener = TcpListener::bind("127.0.0.1:0").expect("listener binds");
    let addr = listener.local_addr().expect("local addr").to_string();
    let fake = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("client connects");
        let mut writer = stream.try_clone().expect("stream clones");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        for _ in 0..3 {
            line.clear();
            reader.read_line(&mut line).expect("request line arrives");
        }
        writer
            .write_all(b"{\"id\": 0, \"ok\": true, \"exit\": 0, \"output\": \"stub\"}\n")
            .expect("response writes");
        writer.flush().expect("response flushes");
        // Dropping both halves closes the socket with ids 1 and 2 still
        // unanswered.
    });

    let scratch = Scratch::new("specan-lost-ids");
    let paths: Vec<String> = (0..3)
        .map(|i| {
            scratch
                .write(&format!("p{i}.spec"), "never analysed\n")
                .display()
                .to_string()
        })
        .collect();
    let mut args = vec!["submit", "--addr", &addr, "analyze"];
    args.extend(paths.iter().map(String::as_str));
    args.extend_from_slice(&["--cache-lines", "8", "--json"]);
    let out = specan(&args);
    fake.join().expect("fake server finishes");

    // Before the fix this printed a bare socket error; the caller could
    // not tell which submissions were swallowed.  Now every lost id is
    // named and the exit is non-zero.
    assert_eq!(out.status.code(), Some(2), "a lost pipeline exits 2");
    let err = stderr_of(&out);
    assert!(
        err.contains("lost request id(s): 1, 2"),
        "the lost ids are named: {err}"
    );
    assert!(
        err.contains("2 of 3"),
        "the loss is quantified against the pipeline: {err}"
    );
    assert!(
        err.contains("p1.spec") && err.contains("p2.spec"),
        "each lost id maps back to its input file: {err}"
    );
}
