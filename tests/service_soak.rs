//! Soak test for the memory-bounded analysis service: one `specan serve
//! --max-session-bytes` process fed far more distinct programs than its
//! budget holds, every one submitted twice.
//!
//! Three properties are held under load:
//!
//! * **the bound is strict** — the server's reported `session_bytes` never
//!   exceeds the budget at any request boundary (the server re-measures
//!   and evicts after every request);
//! * **eviction is invisible** — every response, first or second
//!   submission, warm or re-prepared, is byte-identical (post timing
//!   strip) to a fresh one-shot CLI run of the same file;
//! * **no stale replay** — re-submitting an *evicted* program under
//!   renamed regions renders the new names, closing the
//!   rename-stale-names class of bugs for the eviction path (the entry is
//!   gone, so nothing stale can possibly be replayed).

use std::path::Path;
use std::process::{Command, Output};
use std::sync::Arc;

use spec_bench::service_harness::{
    random_program_text, strip_analyze_timing, Rng, Scratch, ServeProcess,
};
use speculative_absint::core::cache_session::{CacheOutcome, CacheSession};
use speculative_absint::core::incremental::SessionCache;
use speculative_absint::core::service::{analyze_output, AnalyzeConfig};
use speculative_absint::core::session::Analyzer;
use speculative_absint::ir::text::parse_program;

const PROGRAMS: usize = 12;
const CACHE_LINES: &str = "8";

fn specan(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_specan"))
        .args(args)
        .output()
        .expect("specan runs")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).unwrap()
}

fn submit(server: &ServeProcess, args: &[&str]) -> Output {
    let mut full = vec!["submit", "--addr", server.addr()];
    full.extend_from_slice(args);
    specan(&full)
}

/// Extracts an unsigned field from the `status` JSON by key.
fn status_field(status: &str, key: &str) -> u64 {
    status
        .split(&format!("\"{key}\": "))
        .nth(1)
        .and_then(|rest| rest.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|digits| digits.parse().ok())
        .unwrap_or_else(|| panic!("status lacks `{key}`: {status}"))
}

#[test]
fn bounded_server_soak_holds_the_byte_budget_without_changing_results() {
    let scratch = Scratch::new("specan-service-soak");
    let mut rng = Rng::new(0x50a6_2026);
    let mut texts = Vec::new();
    let mut paths = Vec::new();
    for i in 0..PROGRAMS {
        let name = format!("soak{i:02}");
        let text = random_program_text(&mut rng, &name);
        paths.push(scratch.write(&format!("{name}.spec"), &text));
        texts.push(text);
    }

    // Calibrate the budget in-process with the *same* request the server
    // will run (the shared `analyze_output` path), so "N programs ≫
    // budget" holds by construction: the budget is a quarter of the whole
    // ran-in set, i.e. roughly three entries' worth for twelve programs.
    let config = AnalyzeConfig {
        cache_lines: 8,
        json: true,
        ..AnalyzeConfig::default()
    };
    let total_bytes: u64 = texts
        .iter()
        .map(|text| {
            let program = parse_program(text).expect("generated programs parse");
            let prepared = Arc::new(Analyzer::new().prepare(&program));
            analyze_output(&prepared, &config).expect("probe analyzes");
            let probe = CacheSession::new(SessionCache::new());
            match probe.acquire(&program) {
                CacheOutcome::NeedsPrepare(guard) => {
                    guard.commit(prepared);
                }
                other => panic!("a fresh probe must miss, got `{}`", other.tag()),
            };
            probe.resident_bytes()
        })
        .sum();
    let budget = total_bytes / 4;
    assert!(budget > 0);

    let server = ServeProcess::start_with_args(
        Path::new(env!("CARGO_BIN_EXE_specan")),
        2,
        &["--max-session-bytes", &budget.to_string()],
    );

    // Submit every program twice; after each response the reported
    // resident bytes must fit the budget, and each response must equal a
    // fresh one-shot run (eviction and re-preparation included).
    for round in 0..2 {
        for (i, path) in paths.iter().enumerate() {
            let path = path.to_str().unwrap();
            let served = submit(
                &server,
                &["analyze", path, "--cache-lines", CACHE_LINES, "--json"],
            );
            assert_eq!(
                served.status.code(),
                Some(0),
                "round {round} program {i}: {}",
                String::from_utf8_lossy(&served.stderr)
            );
            let fresh = specan(&["analyze", path, "--cache-lines", CACHE_LINES, "--json"]);
            assert_eq!(
                strip_analyze_timing(&stdout_of(&served)),
                strip_analyze_timing(&stdout_of(&fresh)),
                "round {round} program {i}: response must match a fresh run"
            );
            let status = stdout_of(&submit(&server, &["status"]));
            let resident = status_field(&status, "session_bytes");
            assert!(
                resident <= budget,
                "round {round} program {i}: resident {resident} bytes exceed \
                 the {budget}-byte budget: {status}"
            );
        }
    }

    // The soak really exercised eviction, and the counters reconcile:
    // installs minus evictions is exactly the resident population.
    let status = stdout_of(&submit(&server, &["status"]));
    let evictions = status_field(&status, "session_evictions");
    let inserted = status_field(&status, "inserted");
    let resident_programs = status_field(&status, "programs");
    assert!(
        evictions > 0,
        "twelve programs against a ~three-program budget must evict: {status}"
    );
    assert!(resident_programs < PROGRAMS as u64, "not everything fits");
    assert_eq!(
        inserted - evictions,
        resident_programs,
        "installs - evictions must equal resident entries: {status}"
    );

    // No stale replay after eviction: the first program of the final round
    // is long evicted (eleven fresher programs follow it, worth far more
    // than the budget).  Re-submit it with every region renamed — same
    // structural fingerprint — and the server must render the *new* names,
    // exactly like a fresh run of the edited file.
    let renamed = texts[0].replace("table", "lut").replace("flag", "toggle");
    assert_ne!(renamed, texts[0], "the rename must actually rename");
    let path = scratch.write("soak00.spec", &renamed);
    let path = path.to_str().unwrap();
    let served = submit(
        &server,
        &["analyze", path, "--cache-lines", CACHE_LINES, "--json"],
    );
    assert_eq!(served.status.code(), Some(0));
    let fresh = specan(&["analyze", path, "--cache-lines", CACHE_LINES, "--json"]);
    assert_eq!(
        strip_analyze_timing(&stdout_of(&served)),
        strip_analyze_timing(&stdout_of(&fresh)),
        "an evicted program must be re-prepared, never replayed stale"
    );
    assert!(stdout_of(&served).contains("\"lut\""), "new names render");
    assert!(
        !stdout_of(&served).contains("\"table\""),
        "old names are gone"
    );
}
