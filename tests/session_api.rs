//! The session API contract: prepared runs are bit-identical to fresh
//! `CacheAnalysis::run` calls across configurations, suites preserve labels
//! and order, and a prepared program can be hammered from many threads.

use speculative_absint::cache::CacheConfig;
use speculative_absint::core::session::comparison_configs;
use speculative_absint::core::{AnalysisOptions, AnalysisResult, Analyzer, CacheAnalysis};
use speculative_absint::ir::Program;
use speculative_absint::vcfg::MergeStrategy;
use speculative_absint::workloads::{ete_workload, figure2_program, quantl_program};

const LINES: u64 = 32;

fn cache() -> CacheConfig {
    CacheConfig::fully_associative(LINES as usize, 64)
}

/// The full observable classification surface of a result.
fn fingerprint(result: &AnalysisResult) -> impl PartialEq + std::fmt::Debug + '_ {
    (
        result.accesses(),
        &result.bounds,
        result.colors,
        result.rounds,
        result.speculated_branches,
        result.unroll,
        result.iterations(),
    )
}

fn exercised_configs() -> Vec<(String, AnalysisOptions)> {
    let mut configs = comparison_configs(cache());
    configs.push((
        "rollback-no-shadow".to_string(),
        AnalysisOptions::builder()
            .cache(cache())
            .merge_strategy(MergeStrategy::MergeAtRollback)
            .shadow(false)
            .build()
            .unwrap(),
    ));
    configs.push((
        "short-windows".to_string(),
        AnalysisOptions::builder()
            .cache(cache())
            .speculation_depths(2, 10)
            .build()
            .unwrap(),
    ));
    configs.push((
        "no-unroll".to_string(),
        AnalysisOptions::builder()
            .cache(cache())
            .unroll_loops(false)
            .build()
            .unwrap(),
    ));
    configs.push((
        "small-cache".to_string(),
        AnalysisOptions::builder()
            .cache(CacheConfig::fully_associative(8, 64))
            .build()
            .unwrap(),
    ));
    configs
}

fn programs() -> Vec<Program> {
    vec![
        figure2_program(LINES),
        quantl_program(),
        ete_workload("jcphuff", LINES).program,
    ]
}

#[test]
fn prepared_runs_match_fresh_runs_bit_for_bit() {
    for program in programs() {
        let prepared = Analyzer::new().prepare(&program);
        for (label, options) in exercised_configs() {
            let fresh = CacheAnalysis::new(options).run(&program);
            let session = prepared.run(&options);
            assert_eq!(
                fingerprint(&fresh),
                fingerprint(&session),
                "{}/{label}: session result diverged from a fresh run",
                program.name()
            );
        }
    }
}

#[test]
fn run_suite_matches_individual_runs() {
    let program = quantl_program();
    let prepared = Analyzer::new().prepare(&program);
    let configs = exercised_configs();
    let suite = prepared.run_suite(&configs);
    assert_eq!(suite.runs.len(), configs.len());
    for ((label, options), run) in configs.iter().zip(&suite.runs) {
        assert_eq!(&run.label, label, "suite results keep input order");
        let fresh = CacheAnalysis::new(*options).run(&program);
        assert_eq!(
            fingerprint(&fresh),
            fingerprint(&run.result),
            "{label}: suite result diverged from a fresh run"
        );
    }
}

#[test]
fn repeated_runs_of_one_config_are_stable() {
    let program = figure2_program(LINES);
    let prepared = Analyzer::new().prepare(&program);
    let options = AnalysisOptions::builder().cache(cache()).build().unwrap();
    let first = prepared.run(&options);
    let second = prepared.run(&options);
    assert_eq!(fingerprint(&first), fingerprint(&second));
}

#[test]
fn concurrent_smoke_many_threads_share_one_prepared_program() {
    // Hammer one prepared program from many scoped threads with a mix of
    // configurations; every thread must see results identical to a fresh
    // run, with the memoized artifacts built at most once each.
    let program = figure2_program(LINES);
    let prepared = Analyzer::new().prepare(&program);
    let configs = exercised_configs();
    let expected: Vec<AnalysisResult> = configs
        .iter()
        .map(|(_, options)| CacheAnalysis::new(*options).run(&program))
        .collect();

    std::thread::scope(|scope| {
        for worker in 0..8 {
            let configs = &configs;
            let expected = &expected;
            let prepared = &prepared;
            scope.spawn(move || {
                for round in 0..3 {
                    let index = (worker + round) % configs.len();
                    let result = prepared.run(&configs[index].1);
                    assert_eq!(
                        fingerprint(&result),
                        fingerprint(&expected[index]),
                        "worker {worker} round {round} diverged on `{}`",
                        configs[index].0
                    );
                }
            });
        }
    });
}

#[test]
fn suite_report_reflects_the_classifications() {
    let program = figure2_program(LINES);
    let prepared = Analyzer::new().prepare(&program);
    let suite = prepared.run_suite(&comparison_configs(cache()));
    let report = suite.report();
    assert_eq!(report.program, "figure2");
    for (row, run) in report.rows.iter().zip(&suite.runs) {
        assert_eq!(row.label, run.label);
        assert_eq!(row.misses, run.result.miss_count());
        assert_eq!(row.speculative_misses, run.result.speculative_miss_count());
        assert_eq!(row.accesses, row.must_hits + row.misses);
    }
    // The speculative row must be strictly more pessimistic than the
    // baseline row on Figure 2 (the paper's headline).
    let baseline = &report.rows[0];
    let speculative = &report.rows[1];
    assert!(speculative.misses > baseline.misses);
    // And the JSON serialization carries the same numbers.
    let json = report.to_json();
    assert!(json.contains(&format!("\"misses\": {}", speculative.misses)));
}
