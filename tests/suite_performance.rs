//! The session API's reason to exist: running many configurations of one
//! program through `PreparedProgram::run_suite` must be measurably faster
//! than the same configurations through sequential, fresh
//! `CacheAnalysis::run` calls — while classifying identically.
//!
//! The suite saves the repeated preparation work (loop unrolling, address
//! map, VCFG construction — shared across all six configurations here, which
//! differ only in solver-side knobs) and additionally fans out across
//! threads on multi-core machines.  The assertion uses best-of-N timing on
//! both sides to be robust against scheduler noise.

use std::time::{Duration, Instant};

use speculative_absint::cache::CacheConfig;
use speculative_absint::core::{AnalysisOptions, AnalysisResult, Analyzer, CacheAnalysis};
use speculative_absint::workloads::ete_workload;

const LINES: u64 = 64;
const REPETITIONS: u32 = 3;

/// Six configurations that share one VCFG (same window length and merge
/// strategy): the paper's full configuration, a `b_h` sensitivity sweep
/// (Section 6.2's hit-window calibration), the static-depth ablation and
/// the shadow-variable ablation.  All dynamic-bounding members also share
/// the session's memoized zero-bounds seeding pass.
fn configs(cache: CacheConfig) -> Vec<(String, AnalysisOptions)> {
    let base = AnalysisOptions::builder().cache(cache);
    vec![
        ("full".into(), base.build().unwrap()),
        (
            "hit-window-5".into(),
            base.speculation_depths(5, 200).build().unwrap(),
        ),
        (
            "hit-window-10".into(),
            base.speculation_depths(10, 200).build().unwrap(),
        ),
        (
            "hit-window-40".into(),
            base.speculation_depths(40, 200).build().unwrap(),
        ),
        (
            "static-depth".into(),
            base.dynamic_depth_bounding(false).build().unwrap(),
        ),
        ("no-shadow".into(), base.shadow(false).build().unwrap()),
    ]
}

fn classifications(results: &[AnalysisResult]) -> Vec<Vec<speculative_absint::core::AccessInfo>> {
    results.iter().map(|r| r.accesses().to_vec()).collect()
}

#[test]
fn run_suite_beats_sequential_fresh_runs() {
    // `gtk` is the prep-heaviest ETE stand-in: unrolling and VCFG
    // construction are a large share of a fresh run, so the session's
    // artifact sharing pays off even on a single core.
    let workload = ete_workload("gtk", LINES);
    let cache = CacheConfig::fully_associative(LINES as usize, 64);
    let configs = configs(cache);

    let mut sequential_best = Duration::MAX;
    let mut sequential_results = Vec::new();
    for _ in 0..REPETITIONS {
        let start = Instant::now();
        let results: Vec<AnalysisResult> = configs
            .iter()
            .map(|(_, options)| CacheAnalysis::new(*options).run(&workload.program))
            .collect();
        let elapsed = start.elapsed();
        if elapsed < sequential_best {
            sequential_best = elapsed;
        }
        sequential_results = results;
    }

    let mut suite_best = Duration::MAX;
    let mut suite_results = Vec::new();
    for _ in 0..REPETITIONS {
        // Preparation is part of the measured cost: every repetition starts
        // from an unprepared program, exactly like the sequential side.
        let start = Instant::now();
        let suite = Analyzer::new()
            .prepare(&workload.program)
            .run_suite(&configs);
        let elapsed = start.elapsed();
        if elapsed < suite_best {
            suite_best = elapsed;
        }
        suite_results = suite.runs.into_iter().map(|run| run.result).collect();
    }

    // Identical classifications, configuration by configuration.
    assert_eq!(
        classifications(&sequential_results),
        classifications(&suite_results),
        "suite classifications diverged from sequential fresh runs"
    );

    // Measurably faster.  Single-core lower bound: the suite shares one
    // unroll + address map + VCFG across all six configurations and solves
    // the zero-bounds seeding pass once instead of five times; multi-core
    // machines add thread-level fan-out on top.  5% margin over "not
    // slower" keeps the assertion honest yet robust to timer noise.
    assert!(
        suite_best < sequential_best.mul_f64(0.95),
        "run_suite ({:.1} ms) is not measurably faster than sequential fresh runs ({:.1} ms)",
        suite_best.as_secs_f64() * 1e3,
        sequential_best.as_secs_f64() * 1e3,
    );
}
