//! Property suite for the telemetry layer: histogram quantile estimates
//! against a sorted-vector oracle, the Prometheus text exposition parsed
//! back line by line, lock-free recording reconciled across threads, and a
//! live `specan serve` whose `metrics` scrape must agree with its `status`
//! document after a pipelined burst.
//!
//! Telemetry is a side channel: nothing here asserts on response bytes,
//! and the equivalence suites prove those stay identical with it enabled.

use std::path::Path;
use std::time::Duration;

use spec_bench::service_harness::{random_program_text, Rng, ServeProcess};
use spec_core::batch::{PanelKind, PanelSpec};
use spec_core::service::{Request, ServiceClient};
use spec_telemetry::{Histogram, Registry};

fn specan() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_specan"))
}

/// The value of one exact series line (`name{labels}`) in an exposition.
fn series_value(exposition: &str, series: &str) -> f64 {
    exposition
        .lines()
        .find_map(|line| line.strip_prefix(series)?.strip_prefix(' '))
        .unwrap_or_else(|| panic!("exposition lacks `{series}`:\n{exposition}"))
        .parse()
        .expect("series value parses as a float")
}

/// A named counter out of a `status` JSON document.
fn status_counter(status: &str, name: &str) -> u64 {
    status
        .split(&format!("\"{name}\": "))
        .nth(1)
        .and_then(|rest| rest.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|digits| digits.parse().ok())
        .unwrap_or_else(|| panic!("status reports `{name}`: {status}"))
}

#[test]
fn histogram_quantiles_bracket_the_sorted_oracle() {
    // Log-uniform durations over 1 µs .. 10 s — the full range the serve
    // phases actually produce — recorded into one histogram and into a
    // plain vector.  The log₂-bucket estimate must bracket the oracle:
    // never below the true quantile, never more than 2× above it.
    let mut rng = Rng::new(0x07e1_e3e7);
    let histogram = Histogram::default();
    let mut nanos: Vec<u64> = Vec::new();
    for _ in 0..5_000 {
        let log = rng.below(1_000_000) as f64 / 1_000_000.0 * 7.0;
        let value = (1e3 * 10f64.powf(log)) as u64;
        nanos.push(value);
        histogram.record(Duration::from_nanos(value));
    }
    nanos.sort_unstable();
    let snapshot = histogram.snapshot();
    assert_eq!(snapshot.count, 5_000);
    assert_eq!(snapshot.sum_nanos, nanos.iter().sum::<u64>());
    for q in [0.5, 0.9, 0.99, 1.0] {
        let rank = ((q * nanos.len() as f64).ceil() as usize).max(1);
        let oracle = nanos[rank - 1] as f64 * 1e-9;
        let estimate = snapshot.quantile(q);
        assert!(
            estimate >= oracle - 1e-12,
            "q={q}: estimate {estimate} under-reports the oracle {oracle}"
        );
        assert!(
            estimate <= oracle * 2.0,
            "q={q}: estimate {estimate} exceeds 2x the oracle {oracle}"
        );
    }
}

#[test]
fn exposition_renders_escapes_and_parses_back() {
    let registry = Registry::new();
    let hits = registry.counter(
        "demo_hits_total",
        "Hits by tag.",
        &[("tag", "wei\"rd\nva\\lue")],
    );
    hits.add(3);
    let depth = registry.gauge("demo_depth", "A signed level.", &[]);
    depth.set(-2.5);
    let latency = registry.histogram("demo_seconds", "Demo latency.", &[("op", "x")]);
    for micros in [5u64, 50, 500, 5_000, 50_000] {
        latency.record(Duration::from_micros(micros));
    }
    let exposition = registry.snapshot().render();

    // Family metadata, one HELP/TYPE pair per family.
    for family in ["demo_hits_total", "demo_depth", "demo_seconds"] {
        assert_eq!(
            exposition
                .lines()
                .filter(|l| l.starts_with(&format!("# HELP {family} ")))
                .count(),
            1,
            "{exposition}"
        );
        assert_eq!(
            exposition
                .lines()
                .filter(|l| l.starts_with(&format!("# TYPE {family} ")))
                .count(),
            1,
            "{exposition}"
        );
    }
    // Label escaping: backslash, quote and newline all round-trip.
    assert!(
        exposition.contains("demo_hits_total{tag=\"wei\\\"rd\\nva\\\\lue\"} 3"),
        "{exposition}"
    );
    assert!(exposition.contains("demo_depth -2.5"), "{exposition}");

    // Every series line parses: `name` or `name{...}`, one space, a float.
    for line in exposition.lines().filter(|l| !l.starts_with('#')) {
        let (series, value) = line.rsplit_once(' ').expect("series line has a value");
        assert!(!series.is_empty(), "{line}");
        if let Some(open) = series.find('{') {
            assert!(series.ends_with('}'), "{line}");
            assert!(open > 0, "{line}");
        }
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf",
            "unparseable value in `{line}`"
        );
    }

    // The histogram's cumulative buckets are nondecreasing, the +Inf
    // bucket equals _count, and _sum carries the recorded total.
    let buckets: Vec<u64> = exposition
        .lines()
        .filter(|l| l.starts_with("demo_seconds_bucket{op=\"x\",le="))
        .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
        .collect();
    assert!(!buckets.is_empty(), "{exposition}");
    assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "{buckets:?}");
    assert_eq!(*buckets.last().unwrap(), 5, "+Inf bucket counts everything");
    assert_eq!(
        series_value(&exposition, "demo_seconds_count{op=\"x\"}"),
        5.0
    );
    let sum = series_value(&exposition, "demo_seconds_sum{op=\"x\"}");
    let expected = (5 + 50 + 500 + 5_000 + 50_000) as f64 * 1e-6;
    assert!((sum - expected).abs() < 1e-9, "sum {sum} != {expected}");
}

#[test]
fn concurrent_recording_reconciles_exactly() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let registry = Registry::new();
    let counter = registry.counter("reconcile_total", "Increments.", &[]);
    let histogram = registry.histogram("reconcile_seconds", "Recorded values.", &[]);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let counter = counter.clone();
            let histogram = histogram.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    histogram.record(Duration::from_micros((i % 64) + 1));
                }
            });
        }
    });
    let per_thread_nanos: u64 = (0..PER_THREAD).map(|i| ((i % 64) + 1) * 1_000).sum();
    assert_eq!(counter.get(), THREADS * PER_THREAD);
    let snapshot = histogram.snapshot();
    assert_eq!(snapshot.count, THREADS * PER_THREAD);
    assert_eq!(snapshot.sum_nanos, THREADS * per_thread_nanos);
    assert_eq!(snapshot.buckets.iter().sum::<u64>(), snapshot.count);
}

#[test]
fn live_server_metrics_reconcile_with_status() {
    const SCANS: u64 = 20;
    let mut rng = Rng::new(0x11e_7e1);
    let sources: Vec<String> = (0..2)
        .map(|i| random_program_text(&mut rng, &format!("tel{i:02}")))
        .collect();
    let server = ServeProcess::start(specan(), 2);
    let mut client = ServiceClient::connect(server.addr()).expect("server connects");

    let scan = |i: u64| Request::Scan {
        sources: vec![sources[(i % 2) as usize].clone()],
        panel: PanelSpec {
            kind: PanelKind::LeakCheck,
            cache_lines: 8,
        },
        json: true,
    };
    // Warm both programs sequentially first, so exactly two cold prepares
    // happen (a concurrent duplicate prepare would blur the tier counts).
    for i in 0..2 {
        let response = client.call(&scan(i)).expect("warmup scan");
        assert!(response.ok, "{:?}", response.error);
    }
    // Then a pipelined burst: every request in flight before the first
    // answer is read, exercising the queue-wait histogram and the
    // concurrent count-at-completion path.
    let mut ids = Vec::new();
    for i in 2..SCANS {
        ids.push(client.send(&scan(i)).expect("scan submits"));
    }
    for _ in &ids {
        let response = client.recv().expect("scan answers");
        assert!(response.ok, "{:?}", response.error);
    }

    let metrics = client.call(&Request::Metrics).expect("metrics scrapes");
    assert!(metrics.ok);
    let exposition = metrics.output;
    // The ledger: every scan completed ok, and the scrape counted itself
    // before rendering.
    assert_eq!(
        series_value(
            &exposition,
            "spec_requests_total{kind=\"scan\",outcome=\"ok\"}"
        ),
        SCANS as f64
    );
    assert_eq!(
        series_value(
            &exposition,
            "spec_requests_total{kind=\"metrics\",outcome=\"ok\"}"
        ),
        1.0
    );
    // Phase histograms saw every queued request.
    for series in [
        "spec_request_seconds_count{kind=\"scan\"}",
        "spec_phase_seconds_count{phase=\"run\"}",
        "spec_queue_wait_seconds_count",
    ] {
        assert_eq!(series_value(&exposition, series), SCANS as f64, "{series}");
    }
    // Cache tiers: 2 distinct programs prepared cold, the rest warm hits
    // (l0 and l1 split depends on worker interleaving).
    assert_eq!(
        series_value(
            &exposition,
            "spec_cache_acquire_seconds_count{tier=\"cold\"}"
        ),
        2.0
    );
    let warm = series_value(&exposition, "spec_cache_acquire_seconds_count{tier=\"l0\"}")
        + series_value(&exposition, "spec_cache_acquire_seconds_count{tier=\"l1\"}");
    assert_eq!(warm, (SCANS - 2) as f64);

    // The whole exposition stays parseable under load.
    for line in exposition.lines().filter(|l| !l.starts_with('#')) {
        let value = line.rsplit_once(' ').map(|(_, v)| v).unwrap_or("");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable value in `{line}`"
        );
    }

    // `status` reads the same ledger through the same snapshot: the scans,
    // the metrics scrape, and the status request itself.
    let status = client.call(&Request::Status).expect("status answers");
    assert!(status.ok);
    assert_eq!(status_counter(&status.output, "requests"), SCANS + 2);
    assert_eq!(status_counter(&status.output, "errors"), 0);
}
