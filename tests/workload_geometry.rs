//! Set-associative geometry snapshot over the paper's crypto and
//! motivating workloads — the tier-1 face of the bench harness's full
//! `geometry_sweep` bin.
//!
//! The bundle-level sweep (`tests/geometry_sweep.rs`) pins the three
//! example programs; this suite pins the *workload tables*: every Table 4
//! crypto routine plus the motivating programs, analysed at 8 sets ×
//! ways 1/2/4/8 (capacity grows with associativity), at the 16-line bench
//! scale so the whole sweep stays tier-1 fast.  A drift in any number
//! means the set-associative path of the abstract domain — or a workload
//! generator — changed behaviour.

use speculative_absint::cache::CacheConfig;
use speculative_absint::core::{AnalysisOptions, Analyzer};
use speculative_absint::ir::Program;
use speculative_absint::workloads::{
    crypto_suite, figure11_program, figure2_program, quantl_program,
};

const NUM_SETS: usize = 8;
const WAYS: [usize; 4] = [1, 2, 4, 8];
const SCALE_LINES: u64 = 16;

/// One snapshot row: workload, ways, the speculative run's deterministic
/// fields `(must_hits, misses, speculative_misses,
/// unsafe_secret_accesses)`, and the derived leak verdict.
type Row = (&'static str, usize, (usize, usize, usize, usize), bool);

/// The pinned behaviour of the crypto + motivating workloads across the
/// sweep.  The qualitative shape is the interesting part: every crypto
/// routine leaks in the direct-mapped geometry (preloaded table lines
/// conflict-evict each other, so the secret-indexed lookups are not
/// provably timing-neutral) and goes clean once each set holds enough
/// ways for its working set — at different associativities per routine
/// (`seed`/`camellia` at 2, `aes`/`hash` at 4, `des`/`chacha20` only at
/// 8).  The motivating `figure11` and `quantl` programs have no
/// secret-indexed accesses and never leak at any geometry.
const EXPECTED: &[Row] = &[
    ("hash", 1, (3, 20, 8, 2), true),
    ("hash", 2, (3, 20, 8, 2), true),
    ("hash", 4, (5, 18, 8, 0), false),
    ("hash", 8, (5, 18, 8, 0), false),
    ("encoder", 1, (3, 20, 8, 2), true),
    ("encoder", 2, (3, 20, 8, 2), true),
    ("encoder", 4, (5, 18, 8, 0), false),
    ("encoder", 8, (5, 18, 8, 0), false),
    ("chacha20", 1, (4, 28, 12, 2), true),
    ("chacha20", 2, (5, 27, 12, 2), true),
    ("chacha20", 4, (6, 26, 12, 1), true),
    ("chacha20", 8, (7, 25, 12, 0), false),
    ("ocb", 1, (3, 21, 8, 2), true),
    ("ocb", 2, (3, 21, 8, 2), true),
    ("ocb", 4, (5, 19, 8, 0), false),
    ("ocb", 8, (5, 19, 8, 0), false),
    ("aes", 1, (6, 29, 16, 2), true),
    ("aes", 2, (8, 27, 16, 1), true),
    ("aes", 4, (13, 22, 16, 0), false),
    ("aes", 8, (13, 22, 16, 0), false),
    ("str2key", 1, (8, 16, 0, 2), true),
    ("str2key", 2, (9, 15, 0, 1), true),
    ("str2key", 4, (10, 14, 0, 0), false),
    ("str2key", 8, (10, 14, 0, 0), false),
    ("des", 1, (4, 40, 12, 2), true),
    ("des", 2, (5, 39, 12, 2), true),
    ("des", 4, (5, 39, 12, 2), true),
    ("des", 8, (7, 37, 12, 0), false),
    ("seed", 1, (4, 23, 8, 1), true),
    ("seed", 2, (8, 19, 8, 0), false),
    ("seed", 4, (9, 18, 8, 0), false),
    ("seed", 8, (9, 18, 8, 0), false),
    ("camellia", 1, (5, 26, 12, 1), true),
    ("camellia", 2, (7, 24, 12, 0), false),
    ("camellia", 4, (11, 20, 12, 0), false),
    ("camellia", 8, (11, 20, 12, 0), false),
    ("salsa", 1, (14, 16, 0, 2), true),
    ("salsa", 2, (15, 15, 0, 1), true),
    ("salsa", 4, (16, 14, 0, 0), false),
    ("salsa", 8, (16, 14, 0, 0), false),
    ("figure2", 1, (0, 18, 2, 1), true),
    ("figure2", 2, (0, 18, 2, 1), true),
    ("figure2", 4, (1, 17, 2, 0), false),
    ("figure2", 8, (1, 17, 2, 0), false),
    ("figure11", 1, (8, 10, 0, 0), false),
    ("figure11", 2, (8, 10, 0, 0), false),
    ("figure11", 4, (8, 10, 0, 0), false),
    ("figure11", 8, (8, 10, 0, 0), false),
    ("quantl", 1, (20, 12, 4, 0), false),
    ("quantl", 2, (22, 10, 4, 0), false),
    ("quantl", 4, (22, 10, 4, 0), false),
    ("quantl", 8, (22, 10, 4, 0), false),
];

fn workloads() -> Vec<(String, Program)> {
    let mut programs: Vec<(String, Program)> = crypto_suite(SCALE_LINES)
        .into_iter()
        .map(|(workload, _)| (workload.info.name.to_string(), workload.program))
        .collect();
    programs.push(("figure2".to_string(), figure2_program(SCALE_LINES)));
    programs.push(("figure11".to_string(), figure11_program(8)));
    programs.push(("quantl".to_string(), quantl_program()));
    programs
}

#[test]
fn crypto_and_motivating_verdicts_are_stable_across_the_sweep() {
    let mut actual: Vec<Row> = Vec::new();
    for (name, program) in workloads() {
        let prepared = Analyzer::new().prepare(&program);
        let name: &'static str = EXPECTED
            .iter()
            .map(|(expected_name, ..)| *expected_name)
            .find(|expected_name| *expected_name == name)
            .unwrap_or_else(|| panic!("unexpected workload `{name}`: re-pin the snapshot"));
        for ways in WAYS {
            let cache = CacheConfig::set_associative(NUM_SETS, ways, 64);
            let result = prepared.run(&AnalysisOptions::builder().cache(cache).build().unwrap());
            let unsafe_secret = result
                .secret_accesses()
                .filter(|access| !access.observable_hit || access.is_speculative_miss())
                .count();
            actual.push((
                name,
                ways,
                (
                    result.must_hit_count(),
                    result.miss_count(),
                    result.speculative_miss_count(),
                    unsafe_secret,
                ),
                unsafe_secret > 0,
            ));
        }
    }
    assert_eq!(
        actual, EXPECTED,
        "workload geometry verdicts drifted; if the change is intended, \
         re-pin the snapshot from this failure's `left` value"
    );
}

/// The domain's monotonicity contract on the workload tables: within a
/// fixed set count, growing the ways never loses a must-hit guarantee.
#[test]
fn more_ways_never_lose_must_hits_on_the_workloads() {
    for (name, program) in workloads() {
        let prepared = Analyzer::new().prepare(&program);
        let mut previous = None;
        for ways in WAYS {
            let cache = CacheConfig::set_associative(NUM_SETS, ways, 64);
            let result = prepared.run(&AnalysisOptions::builder().cache(cache).build().unwrap());
            let must_hits = result.must_hit_count();
            if let Some(previous) = previous {
                assert!(
                    must_hits >= previous,
                    "{name}: {ways} ways lost must-hits ({must_hits} < {previous})"
                );
            }
            previous = Some(must_hits);
        }
    }
}
